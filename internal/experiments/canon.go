package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/noc"
	"spamer/internal/workloads"
)

// This file defines the canonical form of a Spec and a stable
// content-address over it. Two specs that describe the same simulation
// — regardless of JSON field order, omitted-vs-explicit defaults, or an
// override that happens to spell out the built-in value — canonicalize
// to the same bytes and therefore the same hash. The serving layer
// (internal/service) keys its result cache on this hash, so a repeated
// sweep is answered without re-simulating.

// Canonical returns a copy of s with every defaulted field resolved to
// the value the simulator would actually use and every irrelevant
// override dropped:
//
//   - empty Algorithms becomes the full four-configuration suite;
//   - zero Scale/Repeat/HopLatency/Channels/Devices become their
//     effective defaults;
//   - SRDEntries spelling out the built-in entry count collapses to 0;
//   - a Tuned block that restates the paper defaults, or that no tuned
//     algorithm will ever read, is dropped;
//   - an Extensions block that grants nothing, or whose grant the
//     benchmark does not need, is dropped.
//
// Label is preserved verbatim: it is copied into every Outcome, so two
// specs with different labels produce different results.
func (s Spec) Canonical() Spec {
	c := s
	if c.Shape != nil {
		// Shape specs: pin the benchmark name, canonicalize the shape
		// (default spellings and the nested arrival spec collapse), and
		// drop extensions — the shape is the workload, no grant needed.
		c.Benchmark = "synthetic"
		sh := c.Shape.Canonical()
		c.Shape = &sh
		c.Extensions = nil
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = spamer.Configs()
	} else {
		c.Algorithms = append([]string(nil), c.Algorithms...)
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.HopLatency == 0 {
		c.HopLatency = config.HopCycles
	}
	if c.Channels <= 0 {
		c.Channels = noc.DefaultChannels
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.SRDEntries == config.SRDEntries {
		// Spelling out the built-in entry count yields the same device
		// as leaving the override unset (prod = cons = link = default).
		c.SRDEntries = 0
	}
	if c.Repeat <= 1 {
		// Repeat 0 and 1 both mean "run once, no determinism check".
		c.Repeat = 1
	}
	if c.Domains > 1 {
		// Every Domains >= 1 dispatches the identical event trace — the
		// worker-lane count is an execution detail, proven by
		// TestGoldenParallelTrace — so all of them share one cache entry.
		// Domains 0 stays distinct: the sequential kernel is a different
		// timing model (see docs/SIMULATOR.md, "Parallel kernel").
		c.Domains = 1
	}
	if c.Fault != nil {
		if !c.Fault.armed() {
			c.Fault = nil
		} else {
			f := *c.Fault
			c.Fault = &f
		}
	}
	if c.Tuned != nil {
		if !usesTuned(c.Algorithms) || *c.Tuned == defaultTunedSpec() {
			c.Tuned = nil
		} else {
			t := *c.Tuned
			c.Tuned = &t
		}
	}
	if c.Extensions != nil {
		_, core := workloads.ByName(c.Benchmark)
		if !c.Extensions.AllowExtendedWorkloads || core {
			c.Extensions = nil
		} else {
			e := *c.Extensions
			c.Extensions = &e
		}
	}
	return c
}

func usesTuned(algs []string) bool {
	for _, a := range algs {
		if a == spamer.AlgTuned {
			return true
		}
	}
	return false
}

func defaultTunedSpec() TunedSpec {
	d := config.DefaultTuned()
	return TunedSpec{Zeta: d.Zeta, Tau: d.Tau, Delta: d.Delta, Alpha: d.Alpha, Beta: d.Beta}
}

// Hash returns the hex SHA-256 of the canonical spec's JSON encoding —
// a stable content address, independent of the field order or default
// spelling of the JSON the spec was read from.
func (s Spec) Hash() string {
	return HashSpecs([]Spec{s})
}

// HashSpecs content-addresses an ordered spec list (the unit cmd/
// spamer-run and the service execute). Order matters: outcomes are
// emitted in spec order, so a permuted list is a different job.
func HashSpecs(specs []Spec) string {
	canon := make([]Spec, len(specs))
	for i := range specs {
		canon[i] = specs[i].Canonical()
	}
	// Struct marshaling fixes the key order, so the encoding — and the
	// hash — depend only on the canonical field values.
	data, err := json.Marshal(canon)
	if err != nil {
		// Spec holds only plain data; Marshal cannot fail on it.
		panic("experiments: marshal canonical spec: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
