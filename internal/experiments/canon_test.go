package experiments

import (
	"strings"
	"testing"

	"spamer"
)

// TestHashFieldOrderIndependent: the same spec serialized with
// different JSON key orders hashes identically.
func TestHashFieldOrderIndependent(t *testing.T) {
	a := `{"benchmark":"FIR","algorithms":["vl","tuned"],"scale":2}`
	b := `{"scale":2,"algorithms":["vl","tuned"],"benchmark":"FIR"}`
	sa, err := ReadSpecs(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ReadSpecs(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := HashSpecs(sa), HashSpecs(sb); ha != hb {
		t.Fatalf("field order changed hash: %s vs %s", ha, hb)
	}
}

// TestHashDefaultInsensitive: omitting a field and spelling out its
// default are the same spec.
func TestHashDefaultInsensitive(t *testing.T) {
	implicit := Spec{Benchmark: "FIR"}
	explicit := Spec{
		Benchmark:  "FIR",
		Algorithms: []string{"vl", "0delay", "adapt", "tuned"},
		Scale:      1,
		HopLatency: 12,
		Channels:   4,
		Devices:    1,
		SRDEntries: 64,
		Repeat:     1,
	}
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("explicit defaults changed hash:\n%+v\n%+v",
			implicit.Canonical(), explicit.Canonical())
	}
}

// TestHashDistinguishesRealChanges: semantically different specs get
// different hashes.
func TestHashDistinguishesRealChanges(t *testing.T) {
	base := Spec{Benchmark: "FIR"}
	variants := []Spec{
		{Benchmark: "halo"},
		{Benchmark: "FIR", Algorithms: []string{"vl"}},
		{Benchmark: "FIR", Scale: 2},
		{Benchmark: "FIR", HopLatency: 48},
		{Benchmark: "FIR", Label: "x"},
		{Benchmark: "FIR", Repeat: 2},
		{Benchmark: "FIR", NoInline: true},
		{Benchmark: "FIR", SRDEntries: 16},
		{Benchmark: "FIR", Tuned: &TunedSpec{Zeta: 512, Tau: 48, Delta: 128, Alpha: 1, Beta: 2}},
	}
	seen := map[string]int{base.Hash(): -1}
	for i, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[h] = i
	}
}

// TestCanonicalDropsIrrelevantOverrides: tuned parameters without a
// tuned algorithm, default tuned parameters, and no-op extension blocks
// all vanish.
func TestCanonicalDropsIrrelevantOverrides(t *testing.T) {
	def := defaultTunedSpec()
	cases := []Spec{
		{Benchmark: "FIR", Algorithms: []string{"vl"}, Tuned: &TunedSpec{Zeta: 512}},
		{Benchmark: "FIR", Tuned: &def},
		{Benchmark: "FIR", Extensions: &Extensions{}},
		{Benchmark: "FIR", Extensions: &Extensions{AllowExtendedWorkloads: true}},
	}
	for i, c := range cases {
		got := c.Canonical()
		if got.Tuned != nil || got.Extensions != nil {
			t.Errorf("case %d: override survived canonicalization: %+v", i, got)
		}
	}
	// The extension grant survives when an extended benchmark needs it.
	ext := Spec{Benchmark: "allreduce", Extensions: &Extensions{AllowExtendedWorkloads: true}}
	if ext.Canonical().Extensions == nil {
		t.Fatal("needed extension grant dropped")
	}
	// A meaningful tuned override survives alongside a tuned algorithm.
	tuned := Spec{Benchmark: "FIR", Algorithms: []string{spamer.AlgTuned},
		Tuned: &TunedSpec{Zeta: 512, Tau: 48, Delta: 128, Alpha: 1, Beta: 2}}
	if tuned.Canonical().Tuned == nil {
		t.Fatal("meaningful tuned override dropped")
	}
}

// TestCanonicalDoesNotAliasInput: canonicalization copies slices and
// pointers, so mutating the canonical form leaves the original intact.
func TestCanonicalDoesNotAliasInput(t *testing.T) {
	orig := Spec{Benchmark: "FIR", Algorithms: []string{"vl", spamer.AlgTuned},
		Tuned: &TunedSpec{Zeta: 512, Tau: 48, Delta: 1, Alpha: 1, Beta: 2}}
	c := orig.Canonical()
	c.Algorithms[0] = "mutated"
	c.Tuned.Zeta = 999
	if orig.Algorithms[0] != "vl" || orig.Tuned.Zeta != 512 {
		t.Fatalf("canonical form aliases input: %+v", orig)
	}
}

// TestHashSpecsOrderMatters: a job is an ordered list — permuting it is
// a different job (outcomes are emitted in spec order).
func TestHashSpecsOrderMatters(t *testing.T) {
	a, b := Spec{Benchmark: "FIR"}, Spec{Benchmark: "halo"}
	if HashSpecs([]Spec{a, b}) == HashSpecs([]Spec{b, a}) {
		t.Fatal("permuted spec list hashed identically")
	}
}

// TestHashDomainsCollapse: every positive domains value hashes alike
// (worker-lane count is an execution detail, proven trace-invariant by
// TestGoldenParallelTrace), while 0 — the sequential kernel, a
// different timing model — hashes differently.
func TestHashDomainsCollapse(t *testing.T) {
	base := Spec{Benchmark: "FIR", Algorithms: []string{"vl"}}
	d1, d4 := base, base
	d1.Domains = 1
	d4.Domains = 4
	if d1.Hash() != d4.Hash() {
		t.Error("domains=1 and domains=4 hash differently")
	}
	if base.Hash() == d1.Hash() {
		t.Error("domains=0 (sequential) hashes like domains=1 (parallel model)")
	}
}
