package experiments

import (
	"testing"

	"spamer"
)

// BenchmarkSpecRun measures an end-to-end experiment through the spec
// layer — the unit of work every sweep, ablation, tuner pass, and
// spamer-serve job bottoms out in. It runs the golden FIR configuration
// under the VL baseline and the tuned algorithm, so kernel hot-path
// changes show up here as whole-experiment throughput.
func BenchmarkSpecRun(b *testing.B) {
	spec := Spec{
		Benchmark:  "FIR",
		Algorithms: []string{spamer.AlgBaseline, spamer.AlgTuned},
		Tuned:      &TunedSpec{Zeta: 512, Tau: 96, Delta: 64, Alpha: 1, Beta: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != 2 {
			b.Fatalf("outcomes = %d, want 2", len(outs))
		}
	}
}
