package experiments

import (
	"testing"

	"spamer"
)

// BenchmarkSpecRun measures an end-to-end experiment through the spec
// layer — the unit of work every sweep, ablation, tuner pass, and
// spamer-serve job bottoms out in. It runs the golden FIR configuration
// under the VL baseline and the tuned algorithm, so kernel hot-path
// changes show up here as whole-experiment throughput.
func BenchmarkSpecRun(b *testing.B) {
	spec := Spec{
		Benchmark:  "FIR",
		Algorithms: []string{spamer.AlgBaseline, spamer.AlgTuned},
		Tuned:      &TunedSpec{Zeta: 512, Tau: 96, Delta: 64, Alpha: 1, Beta: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != 2 {
			b.Fatalf("outcomes = %d, want 2", len(outs))
		}
	}
}

// benchParallelDomains measures one experiment on the multi-domain
// kernel at a fixed worker-lane count. The workload is halo — 16
// threads, one per simulated core, so all 17 logical domains (16 cores
// + 1 hub) carry work and the lanes have parallelism to harvest. The
// simulated result is bit-identical across lane counts (see
// TestGoldenParallelTrace); only the wall-clock time may differ, which
// is exactly what the Domains1 vs Domains4 comparison isolates.
func benchParallelDomains(b *testing.B, domains int) {
	spec := Spec{
		Benchmark:  "halo",
		Algorithms: []string{spamer.AlgTuned},
		Scale:      4,
		Domains:    domains,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != 1 {
			b.Fatalf("outcomes = %d, want 1", len(outs))
		}
	}
}

// BenchmarkSpecRunSeqHalo runs the identical halo experiment on the
// sequential kernel (Domains: 0). It is the like-for-like baseline for
// the parallel kernel's parity gates: same workload, same scale, only
// the kernel differs — so parallel-vs-SeqHalo deltas measure the
// parallel machinery itself, not workload differences.
func BenchmarkSpecRunSeqHalo(b *testing.B) { benchParallelDomains(b, 0) }

func BenchmarkSpecRunParallelDomains1(b *testing.B) { benchParallelDomains(b, 1) }
func BenchmarkSpecRunParallelDomains2(b *testing.B) { benchParallelDomains(b, 2) }
func BenchmarkSpecRunParallelDomains4(b *testing.B) { benchParallelDomains(b, 4) }
func BenchmarkSpecRunParallelDomains8(b *testing.B) { benchParallelDomains(b, 8) }
