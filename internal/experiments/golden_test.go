package experiments

import (
	"context"
	"reflect"
	"testing"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/harness"
	"spamer/internal/workloads"
)

// Golden event-dispatch trace hashes, recorded on the seed kernel
// (container/heap event queue, commit d76fd36) for a small
// Figure-11-style configuration: the FIR benchmark at scale 1 under the
// VL baseline and under the tuned algorithm at a non-default sweep grid
// point (ζ=512, τ=96, δ=64, α=1, β=2). The calendar-queue kernel must
// dispatch the exact same (tick, seq) sequence; any reordering — even
// one that yields the same end-to-end timing — changes the hash and
// fails the test.
const (
	goldenTraceFIRVL    = 0x19a8e9e6106baf46
	goldenTraceFIRTuned = 0x930283fd156c0137
	goldenTicksFIRVL    = 130913
	goldenTicksFIRTuned = 96727
)

// Golden dispatch-trace hashes for the multi-domain kernel on the same
// FIR configuration. The parallel fabric is a distinct deterministic
// model variant (per-core bus slices; device-write acceptance learned a
// response trip after arrival), so its trace differs from the sequential
// goldens above — but it must be bit-identical for every worker-lane
// count. The hash folds the per-domain FNV-1a streams in domain order.
// Re-pinned for the barrier-light kernel: per-destination deferred
// injection widens the per-domain windows, which changes how same-tick
// cross messages interleave with locally scheduled events (a different
// but equally canonical tie order), so the parallel trace and end tick
// moved while the sequential goldens above stayed put.
const (
	goldenParTraceFIRVL    = 0xbe7d84f625d5eabf
	goldenParTraceFIRTuned = 0x96bc724cdcb1a2e
	goldenParTicksFIRVL    = 129214
	goldenParTicksFIRTuned = 107406
)

// Golden sequential dispatch-trace hashes for the incast benchmark —
// the asymmetric (4:1 fan-in) counterpart to the 1:1 FIR chain above,
// pinning the multi-consumer-line arbitration and producer-window paths
// the chain never exercises. Recorded on the sequential kernel at
// default hardware knobs.
const (
	goldenTraceIncastVL     = 0xe4b4310410456682
	goldenTraceIncast0Delay = 0x57d6cf8005f51e07
	goldenTicksIncastVL     = 220879
	goldenTicksIncast0Delay = 146506
)

// fnv1aPair folds one (tick, seq) pair into an FNV-1a style hash
// without allocating.
func fnv1aPair(h, tick, seq uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h = (h ^ (tick >> (8 * i) & 0xff)) * prime
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (seq >> (8 * i) & 0xff)) * prime
	}
	return h
}

// runTraced runs the golden FIR configuration under alg with a dispatch
// observer attached, returning the trace hash and the result.
func runTraced(t testing.TB, alg string) (uint64, spamer.Result) {
	t.Helper()
	w, ok := workloads.ByName("FIR")
	if !ok {
		t.Fatal("FIR workload missing")
	}
	cfg := spamer.Config{
		Algorithm: alg,
		Tuned:     config.TunedParams{Zeta: 512, Tau: 96, Delta: 64, Alpha: 1, Beta: 2},
	}
	sys := spamer.NewSystem(cfg)
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	sys.Kernel().SetDispatchObserver(func(tick, seq uint64) {
		h = fnv1aPair(h, tick, seq)
	})
	w.Build(sys, 1)
	res := sys.Run()
	return h, res
}

// TestGoldenDispatchTrace proves the event queue dispatches bit-identically
// to the seed kernel's (tick, seq) order on a full experiment run.
func TestGoldenDispatchTrace(t *testing.T) {
	for _, tc := range []struct {
		alg   string
		hash  uint64
		ticks uint64
	}{
		{spamer.AlgBaseline, goldenTraceFIRVL, goldenTicksFIRVL},
		{spamer.AlgTuned, goldenTraceFIRTuned, goldenTicksFIRTuned},
	} {
		h, res := runTraced(t, tc.alg)
		if h != tc.hash {
			t.Errorf("%s: dispatch trace hash = %#x, golden %#x (event order diverged from seed kernel)",
				tc.alg, h, tc.hash)
		}
		if res.Ticks != tc.ticks {
			t.Errorf("%s: ticks = %d, golden %d", tc.alg, res.Ticks, tc.ticks)
		}
	}
}

// TestGoldenIncastTrace pins the sequential dispatch trace of the
// asymmetric incast benchmark (four producers funneling into one
// 32-line consumer) under the baseline and the zero-delay speculative
// configuration.
func TestGoldenIncastTrace(t *testing.T) {
	w, ok := workloads.ByName("incast")
	if !ok {
		t.Fatal("incast workload missing")
	}
	for _, tc := range []struct {
		alg   string
		hash  uint64
		ticks uint64
	}{
		{spamer.AlgBaseline, goldenTraceIncastVL, goldenTicksIncastVL},
		{spamer.AlgZeroDelay, goldenTraceIncast0Delay, goldenTicksIncast0Delay},
	} {
		sys := spamer.NewSystem(spamer.Config{Algorithm: tc.alg})
		sys.EnableDispatchTrace()
		w.Build(sys, 1)
		res := sys.Run()
		if h := sys.DispatchTraceHash(); h != tc.hash {
			t.Errorf("%s: incast dispatch trace hash = %#x, golden %#x", tc.alg, h, tc.hash)
		}
		if res.Ticks != tc.ticks {
			t.Errorf("%s: incast ticks = %d, golden %d", tc.alg, res.Ticks, tc.ticks)
		}
	}
}

// TestGoldenParallelTrace proves the multi-domain kernel dispatches a
// bit-identical event trace regardless of worker-lane count: the same
// golden FIR configuration at domains 1 through 16 must reproduce the
// recorded hash and tick count exactly. Any divergence means the
// conservative barrier or the mailbox merge order leaked execution
// nondeterminism into simulated time.
func TestGoldenParallelTrace(t *testing.T) {
	w, ok := workloads.ByName("FIR")
	if !ok {
		t.Fatal("FIR workload missing")
	}
	for _, tc := range []struct {
		alg   string
		hash  uint64
		ticks uint64
	}{
		{spamer.AlgBaseline, goldenParTraceFIRVL, goldenParTicksFIRVL},
		{spamer.AlgTuned, goldenParTraceFIRTuned, goldenParTicksFIRTuned},
	} {
		for _, domains := range []int{1, 2, 4, 8, 16} {
			cfg := spamer.Config{
				Algorithm: tc.alg,
				Tuned:     config.TunedParams{Zeta: 512, Tau: 96, Delta: 64, Alpha: 1, Beta: 2},
				Domains:   domains,
			}
			sys := spamer.NewSystem(cfg)
			sys.EnableDispatchTrace()
			w.Build(sys, 1)
			res := sys.Run()
			if h := sys.DispatchTraceHash(); h != tc.hash {
				t.Errorf("%s domains=%d: dispatch trace hash = %#x, golden %#x (worker count leaked into the trace)",
					tc.alg, domains, h, tc.hash)
			}
			if res.Ticks != tc.ticks {
				t.Errorf("%s domains=%d: ticks = %d, golden %d", tc.alg, domains, res.Ticks, tc.ticks)
			}
		}
	}
}

// TestGoldenParallelInvariance runs the same Figure-11-style spec through
// the parallel harness at 1 and 8 workers: the report output (outcomes)
// must be identical — worker count is an execution detail, never a
// result, and every per-worker kernel must reproduce the same trace.
func TestGoldenParallelInvariance(t *testing.T) {
	specs := []Spec{{
		Benchmark:  "FIR",
		Algorithms: []string{spamer.AlgBaseline, spamer.AlgTuned},
		Tuned:      &TunedSpec{Zeta: 512, Tau: 96, Delta: 64, Alpha: 1, Beta: 2},
		Repeat:     2,
	}}
	run := func(workers int) []Outcome {
		results := RunSpecsParallel(context.Background(), specs, harness.Options{Workers: workers})
		var all []Outcome
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: %v", workers, r.Err)
			}
			all = append(all, r.Outcomes...)
		}
		return all
	}
	p1, p8 := run(1), run(8)
	if !reflect.DeepEqual(p1, p8) {
		t.Fatalf("outcomes differ between -parallel 1 and -parallel 8:\n%+v\nvs\n%+v", p1, p8)
	}
	for _, o := range p1 {
		if o.Deterministic == nil || !*o.Deterministic {
			t.Fatalf("outcome %s/%s not deterministic across repeats", o.Benchmark, o.Algorithm)
		}
		var want uint64
		switch o.Algorithm {
		case spamer.AlgBaseline:
			want = goldenTicksFIRVL
		case spamer.AlgTuned:
			want = goldenTicksFIRTuned
		}
		if o.Ticks != want {
			t.Fatalf("%s: ticks = %d, golden %d", o.Algorithm, o.Ticks, want)
		}
	}
}
