package experiments

// ResolveTraceFiles loads every DAG stage's external replay trace
// (Stage.ReplayFile) into its inline Replay events, resolving relative
// paths against dir — typically the directory of the spec file that
// named them. Specs without DAG shapes are untouched. Resolution must
// happen before Validate/Canonical: validation rejects unresolved
// file references, and the content hash is always over resolved
// events, so a cache hit can never alias two different traces behind
// one filename.
func ResolveTraceFiles(specs []Spec, dir string) error {
	for i := range specs {
		sh := specs[i].Shape
		if sh == nil || sh.DAG == nil {
			continue
		}
		if err := sh.DAG.LoadTraces(dir); err != nil {
			return err
		}
	}
	return nil
}
