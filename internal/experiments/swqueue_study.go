package experiments

import (
	"context"

	"spamer"
	"spamer/internal/harness"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/swqueue"
)

// SoftwareQueueStudy extends the Figure 1 micro-comparison to
// application level: the same two small workloads (a 3-stage pipeline
// chain and a 4:1 incast) built three ways — on the MOESI-modelled
// coherent software queue, on Virtual-Link, and on SPAMeR — to show the
// end-to-end cost of coherence-based queue state that motivates
// hardware queues in the first place (§1-§2).
type SoftwareQueueStudyRow struct {
	Workload string
	SWTicks  uint64 // coherent software queue
	VLTicks  uint64
	SpTicks  uint64 // SPAMeR 0-delay
	// Speedups over the software queue.
	VLOverSW float64
	SpOverSW float64
}

// SoftwareQueueStudy runs both workloads through all three stacks,
// fanned across the harness pool.
func SoftwareQueueStudy() []SoftwareQueueStudyRow {
	rows, err := SoftwareQueueStudyParallel(context.Background(), harness.Options{})
	if err != nil {
		panic(err)
	}
	return rows
}

const (
	swsMessages = 400
	swsSrcWork  = 20
	swsMidWork  = 30
	swsSinkWork = 20
)

// swChain: src -> stage -> sink over coherent software queues.
func swChain() uint64 {
	k := sim.New()
	k.SetDeadline(1 << 34)
	bus := noc.New(k)
	q1 := swqueue.NewCoherentQueue(k, bus, 4)
	q2 := swqueue.NewCoherentQueue(k, bus, 4)
	k.Go("src", func(p *sim.Proc) {
		for i := 0; i < swsMessages; i++ {
			p.Sleep(swsSrcWork)
			q1.Push(p, 0, mem.Message{Seq: uint64(i)})
		}
	})
	k.Go("mid", func(p *sim.Proc) {
		for i := 0; i < swsMessages; i++ {
			m := q1.Pop(p, 1)
			p.Sleep(swsMidWork)
			q2.Push(p, 1, m)
		}
	})
	k.Go("sink", func(p *sim.Proc) {
		for i := 0; i < swsMessages; i++ {
			q2.Pop(p, 2)
			p.Sleep(swsSinkWork)
		}
	})
	k.Run()
	return k.Now()
}

func hwChain(alg string) uint64 {
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg, Deadline: 1 << 34})
	q1 := sys.NewQueue("c1")
	q2 := sys.NewQueue("c2")
	sys.Spawn("src", func(t *spamer.Thread) {
		pr := q1.NewProducer(0)
		for i := 0; i < swsMessages; i++ {
			t.Compute(swsSrcWork)
			pr.Push(t.Proc, uint64(i))
		}
	})
	sys.Spawn("mid", func(t *spamer.Thread) {
		rx := q1.NewConsumer(t.Proc, 2)
		pr := q2.NewProducer(0)
		for i := 0; i < swsMessages; i++ {
			m := rx.Pop(t.Proc)
			t.Compute(swsMidWork)
			pr.Push(t.Proc, m.Payload)
		}
	})
	sys.Spawn("sink", func(t *spamer.Thread) {
		rx := q2.NewConsumer(t.Proc, 2)
		for i := 0; i < swsMessages; i++ {
			rx.Pop(t.Proc)
			t.Compute(swsSinkWork)
		}
	})
	return sys.Run().Ticks
}

// swIncast: 4 producers share one coherent queue — heavy tail/head line
// contention, the §1 scaling pathology.
func swIncast() uint64 {
	k := sim.New()
	k.SetDeadline(1 << 34)
	bus := noc.New(k)
	q := swqueue.NewCoherentQueue(k, bus, 8)
	per := swsMessages / 4
	for c := 0; c < 4; c++ {
		c := c
		k.Go("prod", func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				p.Sleep(swsSrcWork * 4)
				q.Push(p, c, mem.Message{Src: c, Seq: uint64(i)})
			}
		})
	}
	k.Go("master", func(p *sim.Proc) {
		for i := 0; i < swsMessages; i++ {
			q.Pop(p, 5)
			p.Sleep(swsSinkWork)
		}
	})
	k.Run()
	return k.Now()
}

func hwIncast(alg string) uint64 {
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg, Deadline: 1 << 34})
	q := sys.NewQueue("incast")
	per := swsMessages / 4
	for c := 0; c < 4; c++ {
		sys.Spawn("prod", func(t *spamer.Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < per; i++ {
				t.Compute(swsSrcWork * 4)
				pr.Push(t.Proc, uint64(i))
			}
		})
	}
	sys.Spawn("master", func(t *spamer.Thread) {
		rx := q.NewConsumer(t.Proc, 8)
		for i := 0; i < swsMessages; i++ {
			rx.Pop(t.Proc)
			t.Compute(swsSinkWork)
		}
	})
	return sys.Run().Ticks
}
