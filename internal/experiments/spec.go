package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/vl"
	"spamer/internal/workloads"
)

// Spec is a machine-readable experiment description: which benchmark to
// run under which configuration(s), with optional hardware overrides.
// cmd/spamer-run consumes these as JSON, making reproduction scriptable:
//
//	{
//	  "benchmark": "FIR",
//	  "algorithms": ["vl", "0delay", "tuned"],
//	  "scale": 1,
//	  "hop_latency": 24,
//	  "tuned": {"zeta": 512, "tau": 96, "delta": 64, "alpha": 1, "beta": 2}
//	}
type Spec struct {
	Benchmark  string           `json:"benchmark"`
	Shape      *workloads.Shape `json:"shape,omitempty"`      // anonymous synthetic workload; Benchmark "" or "synthetic"
	Algorithms []string         `json:"algorithms,omitempty"` // default: all four
	Scale      int              `json:"scale,omitempty"`
	HopLatency uint64           `json:"hop_latency,omitempty"`
	Channels   int              `json:"bus_channels,omitempty"`
	Devices    int              `json:"devices,omitempty"`
	NoInline   bool             `json:"no_inline,omitempty"`
	SRDEntries int              `json:"srd_entries,omitempty"`
	Domains    int              `json:"domains,omitempty"` // >0: multi-domain kernel with this many worker lanes
	Tuned      *TunedSpec       `json:"tuned,omitempty"`
	Repeat     int              `json:"repeat,omitempty"` // determinism check
	Label      string           `json:"label,omitempty"`
	Fault      *FaultSpec       `json:"fault,omitempty"` // verification-only fault injection
	Extensions *Extensions      `json:"extensions,omitempty"`
}

// FaultSpec arms deterministic fault injection. It exists for the
// verification oracle: a campaign that finds a violation emits the
// failing spec — fault and all — as a plain runnable JSON repro, and
// tests use it to prove the invariants catch real failures.
type FaultSpec struct {
	// DropStash makes the routing device lose its n-th stash delivery
	// (1-based): the device acknowledges a hit without filling the line.
	DropStash uint64 `json:"drop_stash,omitempty"`
	// CorruptStash flips the payload bits of the n-th stash delivery
	// (1-based) while leaving its metadata intact: the run completes,
	// but the delivered content is wrong.
	CorruptStash uint64 `json:"corrupt_stash,omitempty"`
}

// armed reports whether any fault is actually injected.
func (f *FaultSpec) armed() bool {
	return f != nil && (f.DropStash > 0 || f.CorruptStash > 0)
}

// TunedSpec is the JSON form of config.TunedParams.
type TunedSpec struct {
	Zeta  uint64 `json:"zeta"`
	Tau   uint64 `json:"tau"`
	Delta uint64 `json:"delta"`
	Alpha uint64 `json:"alpha"`
	Beta  uint64 `json:"beta"`
}

// Extensions toggles non-paper features.
type Extensions struct {
	// AllowExtendedWorkloads lets Benchmark name allreduce/alltoall/
	// reduce in addition to the Table 2 suite.
	AllowExtendedWorkloads bool `json:"allow_extended_workloads,omitempty"`
}

// Outcome is the machine-readable result of one (benchmark, algorithm)
// run.
type Outcome struct {
	Label          string  `json:"label,omitempty"`
	Benchmark      string  `json:"benchmark"`
	Algorithm      string  `json:"algorithm"`
	Ticks          uint64  `json:"ticks"`
	Milliseconds   float64 `json:"ms"`
	Messages       uint64  `json:"messages"`
	SpeedupOverVL  float64 `json:"speedup_over_vl,omitempty"`
	FailureRate    float64 `json:"failure_rate"`
	BusUtilization float64 `json:"bus_utilization"`
	PushesIssued   uint64  `json:"pushes_issued"`
	Fetches        uint64  `json:"fetches"`
	Deterministic  *bool   `json:"deterministic,omitempty"` // set when Repeat > 1

	// Parallel carries the multi-domain kernel's telemetry on runs with
	// Domains > 0; sequential runs omit it. Every field is a pure
	// function of the model and lookahead — never of lane count or
	// scheduling timing — so outcome JSON stays byte-identical across
	// Domains settings (the repeat/determinism checks rely on that).
	Parallel *ParallelOutcome `json:"parallel,omitempty"`
}

// ParallelOutcome is the JSON form of sim.ParallelStats.
type ParallelOutcome struct {
	Quanta         uint64 `json:"quanta"`
	WindowsSkipped uint64 `json:"windows_skipped"`
	CrossMessages  uint64 `json:"cross_messages"`
	UndeliveredHW  uint64 `json:"undelivered_hw"`
}

// Validate checks a spec before running.
func (s *Spec) Validate() error {
	if s.Shape != nil {
		if s.Benchmark != "" && s.Benchmark != "synthetic" {
			return fmt.Errorf("experiments: shape specs take benchmark \"synthetic\" (or empty), got %q", s.Benchmark)
		}
		if err := s.Shape.Validate(); err != nil {
			return err
		}
		if d := s.Shape.DAG; d != nil {
			// The routing device's deadlock-freedom argument reserves
			// one prodBuf slot per queue, so the device tables must be
			// at least as large as the DAG's queue footprint.
			entries := s.SRDEntries
			if entries == 0 {
				entries = config.SRDEntries
			}
			if q := d.Queues(); q > entries {
				return fmt.Errorf("experiments: dag %q needs %d queues; srd_entries must be at least %d (have %d)",
					d.DisplayName(), q, q, entries)
			}
		}
	} else if s.Benchmark == "" {
		return fmt.Errorf("experiments: spec missing benchmark")
	}
	if _, ok := s.workload(); !ok {
		return fmt.Errorf("experiments: unknown benchmark %q", s.Benchmark)
	}
	for _, a := range s.Algorithms {
		if !validAlg(a) {
			return fmt.Errorf("experiments: unknown algorithm %q", a)
		}
	}
	if s.Scale < 0 || s.Repeat < 0 {
		return fmt.Errorf("experiments: negative scale/repeat")
	}
	if s.Domains < 0 {
		return fmt.Errorf("experiments: negative domains")
	}
	if s.Domains > 0 {
		w, _ := s.workload()
		if !w.ParallelSafe {
			return fmt.Errorf("experiments: benchmark %q is not parallel-safe (domains must be 0)", w.Name)
		}
		if s.Fault.armed() {
			return fmt.Errorf("experiments: fault injection requires the sequential kernel (domains must be 0)")
		}
	}
	return nil
}

func validAlg(a string) bool {
	switch a {
	case spamer.AlgBaseline, spamer.AlgZeroDelay, spamer.AlgAdaptive, spamer.AlgTuned,
		"history", "perceptron", "profiled", "dyntuned":
		return true
	}
	return false
}

func (s *Spec) workload() (*workloads.Workload, bool) {
	if s.Shape != nil {
		return s.Shape.Workload(), true
	}
	if w, ok := workloads.ByName(s.Benchmark); ok {
		return w, true
	}
	if s.Extensions != nil && s.Extensions.AllowExtendedWorkloads {
		return workloads.ExtendedByName(s.Benchmark)
	}
	return nil, false
}

// SystemConfig resolves the spec's hardware knobs into the simulator
// configuration one algorithm's run would use. The verification oracle
// builds its instrumented systems from this, so an oracle run and a
// Spec.Run of the same spec simulate the identical machine.
func (s *Spec) SystemConfig(alg string) spamer.Config {
	return s.systemConfig(alg)
}

func (s *Spec) systemConfig(alg string) spamer.Config {
	cfg := spamer.Config{
		Algorithm:   alg,
		HopLatency:  s.HopLatency,
		BusChannels: s.Channels,
		Devices:     s.Devices,
		NoInline:    s.NoInline,
		Domains:     s.Domains,
		Deadline:    1 << 40,
	}
	if s.Fault != nil {
		cfg.FaultDropStash = s.Fault.DropStash
		cfg.FaultCorruptStash = s.Fault.CorruptStash
	}
	if s.SRDEntries > 0 {
		cfg.SRD = vl.Config{ProdEntries: s.SRDEntries, ConsEntries: s.SRDEntries, LinkEntries: maxInt(s.SRDEntries, 64)}
	}
	if s.Tuned != nil && alg == spamer.AlgTuned {
		cfg.Tuned = config.TunedParams{
			Zeta: s.Tuned.Zeta, Tau: s.Tuned.Tau, Delta: s.Tuned.Delta,
			Alpha: s.Tuned.Alpha, Beta: s.Tuned.Beta,
		}
	}
	return cfg
}

// EffectiveDomains reports the worker-lane count runs of this spec will
// use: the Domains field as the simulator resolves it (0 = the
// sequential reference kernel).
func (s *Spec) EffectiveDomains() int {
	return s.systemConfig(spamer.AlgBaseline).EffectiveDomains()
}

// Run executes the spec, returning one Outcome per algorithm.
func (s *Spec) Run() ([]Outcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w, _ := s.workload()
	algs := s.Algorithms
	if len(algs) == 0 {
		algs = spamer.Configs()
	}
	scale := s.Scale
	if scale == 0 {
		scale = 1
	}
	var base *spamer.Result
	var out []Outcome
	for _, alg := range algs {
		o, res := s.runAlg(w, alg, scale)
		if alg == spamer.AlgBaseline {
			r := res
			base = &r
		}
		if base != nil {
			o.SpeedupOverVL = res.Speedup(*base)
		}
		out = append(out, o)
	}
	return out, nil
}

// runAlg executes one algorithm of the spec — including the Repeat
// determinism check — and returns its outcome alongside the raw result
// (the caller normalizes SpeedupOverVL once its baseline is known).
func (s *Spec) runAlg(w *workloads.Workload, alg string, scale int) (Outcome, spamer.Result) {
	res := w.Run(s.systemConfig(alg), scale)
	bench := s.Benchmark
	if s.Shape != nil {
		bench = w.Name // shapes are anonymous; report their diagnostic name
	}
	o := Outcome{
		Label:          s.Label,
		Benchmark:      bench,
		Algorithm:      alg,
		Ticks:          res.Ticks,
		Milliseconds:   res.MS,
		Messages:       res.Pushed,
		FailureRate:    res.FailureRate(),
		BusUtilization: res.BusUtilization,
		PushesIssued:   res.Device.TotalPushes(),
		Fetches:        res.Device.Fetches,
	}
	if s.systemConfig(alg).EffectiveDomains() > 0 {
		o.Parallel = &ParallelOutcome{
			Quanta:         res.Parallel.Quanta,
			WindowsSkipped: res.Parallel.WindowsSkipped,
			CrossMessages:  res.Parallel.CrossMessages,
			UndeliveredHW:  res.Parallel.UndeliveredHW,
		}
	}
	if s.Repeat > 1 {
		det := true
		for i := 1; i < s.Repeat; i++ {
			again := w.Run(s.systemConfig(alg), scale)
			if again.Ticks != res.Ticks || again.Device != res.Device {
				det = false
				break
			}
		}
		o.Deterministic = &det
	}
	return o, res
}

// ReadSpecs decodes one spec or an array of specs from JSON.
func ReadSpecs(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var many []Spec
	if err := json.Unmarshal(data, &many); err == nil {
		return many, nil
	}
	var one Spec
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("experiments: spec JSON: %w", err)
	}
	return []Spec{one}, nil
}

// WriteOutcomes encodes outcomes as indented JSON.
func WriteOutcomes(w io.Writer, outs []Outcome) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(outs)
}
