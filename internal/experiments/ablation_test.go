package experiments

import "testing"

func TestPredictorStudySanity(t *testing.T) {
	rows := PredictorStudy(1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := PredictorNames()
	if len(names) != 7 {
		t.Fatalf("predictors = %d", len(names))
	}
	for _, r := range rows {
		for _, n := range names {
			sp, ok := r.Speedups[n]
			if !ok {
				t.Fatalf("%s missing %s", r.Benchmark, n)
			}
			// No implemented predictor should be pathologically bad: a
			// liveness or self-locking bug shows up as <0.5x.
			if sp < 0.5 || sp > 5 {
				t.Errorf("%s/%s speedup %v out of sane range", r.Benchmark, n, sp)
			}
		}
	}
}

func TestSweepsRunAndValidate(t *testing.T) {
	if _, err := SRDEntriesSweep("nope", []int{8}, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	pts, err := SRDEntriesSweep("firewall", []int{8, 64}, 1)
	if err != nil || len(pts) != 2 {
		t.Fatalf("srd sweep: %v %v", pts, err)
	}
	for _, p := range pts {
		if p.Speedup <= 0 || p.Ticks == 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	hp, err := HopLatencySweep("ping-pong", []uint64{6, 24}, 1)
	if err != nil || len(hp) != 2 {
		t.Fatalf("hop sweep: %v %v", hp, err)
	}
	// Larger hop latency means a slower system in absolute terms.
	if hp[1].Ticks <= hp[0].Ticks {
		t.Errorf("hop 24 not slower than hop 6: %d vs %d", hp[1].Ticks, hp[0].Ticks)
	}
	ch, err := BusChannelsSweep("halo", []int{1, 4}, 1)
	if err != nil || len(ch) != 2 {
		t.Fatalf("channels sweep: %v %v", ch, err)
	}
	if ch[0].Ticks <= ch[1].Ticks {
		t.Errorf("1-channel halo not slower than 4-channel: %d vs %d", ch[0].Ticks, ch[1].Ticks)
	}
	dv, err := DevicesSweep("firewall", []int{1, 2}, 1)
	if err != nil || len(dv) != 2 {
		t.Fatalf("devices sweep: %v %v", dv, err)
	}
}

func TestObfuscationStudyBounded(t *testing.T) {
	rows := ObfuscationStudy(32, 1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Overhead < -0.05 {
			t.Errorf("%s: obfuscation sped things up by %.1f%%?", r.Benchmark, -r.Overhead*100)
		}
		if r.Overhead > 0.5 {
			t.Errorf("%s: obfuscation overhead %.1f%% implausibly high", r.Benchmark, r.Overhead*100)
		}
	}
}

// TestSoftwareQueueStudy: the app-level comparison preserves the
// Figure 1 ordering — coherent software queues slowest, then VL, then
// SPAMeR fastest or tied.
func TestSoftwareQueueStudy(t *testing.T) {
	rows := SoftwareQueueStudy()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.SWTicks > r.VLTicks) {
			t.Errorf("%s: software queue (%d) not slower than VL (%d)", r.Workload, r.SWTicks, r.VLTicks)
		}
		if r.SpTicks > r.VLTicks {
			t.Errorf("%s: SPAMeR (%d) slower than VL (%d)", r.Workload, r.SpTicks, r.VLTicks)
		}
		if r.VLOverSW < 1.0 || r.SpOverSW < r.VLOverSW {
			t.Errorf("%s: speedups inconsistent: VL %.2f, SPAMeR %.2f", r.Workload, r.VLOverSW, r.SpOverSW)
		}
	}
}
