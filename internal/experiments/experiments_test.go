package experiments

import (
	"testing"

	"spamer"
	"spamer/internal/config"
)

func TestTableRows(t *testing.T) {
	if rows := Table1Rows(); len(rows) != 5 {
		t.Fatalf("Table1Rows = %d", len(rows))
	}
	rows := Table2Rows()
	if len(rows) != 9 {
		t.Fatalf("Table2Rows = %d", len(rows))
	}
	if rows[0][0] != "Benchmark" {
		t.Fatalf("header = %v", rows[0])
	}
}

func TestFigure11GridShape(t *testing.T) {
	grid := Figure11Grid()
	if len(grid) < 9 {
		t.Fatalf("grid size = %d", len(grid))
	}
	seen := map[config.TunedParams]bool{}
	foundDefault := false
	for _, p := range grid {
		if seen[p] {
			t.Fatalf("duplicate grid point %v", p)
		}
		seen[p] = true
		if p == config.DefaultTuned() {
			foundDefault = true
		}
	}
	if !foundDefault {
		t.Fatal("grid omits the paper's chosen parameter set")
	}
}

func TestFigure11UnknownBenchmark(t *testing.T) {
	if _, err := Figure11("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestMatrixDerivations runs a reduced matrix and checks the derived
// figures are internally consistent.
func TestMatrixDerivations(t *testing.T) {
	m := RunMatrix(1)
	if len(m.Benchmarks) != 8 {
		t.Fatalf("benchmarks = %d", len(m.Benchmarks))
	}
	rows := Figure8(m)
	if len(rows) != 8 {
		t.Fatalf("fig8 rows = %d", len(rows))
	}
	for _, r := range rows {
		for alg, sp := range r.Speedups {
			if sp <= 0 {
				t.Fatalf("%s/%s speedup = %v", r.Benchmark, alg, sp)
			}
		}
	}
	f9 := Figure9(m)
	f10 := Figure10(m)
	for _, b := range m.Benchmarks {
		for _, alg := range m.Configs {
			c9 := f9[b][alg]
			if c9.EmptyM < 0 || c9.NonEmptyM < 0 {
				t.Fatalf("fig9 %s/%s: %+v", b, alg, c9)
			}
			c10 := f10[b][alg]
			if c10.FailureRate < 0 || c10.FailureRate > 1 {
				t.Fatalf("fig10 %s/%s failure = %v", b, alg, c10.FailureRate)
			}
			if c10.BusUtilization < 0 || c10.BusUtilization > 1 {
				t.Fatalf("fig10 %s/%s bus = %v", b, alg, c10.BusUtilization)
			}
		}
	}
	for _, alg := range m.Configs[1:] {
		if g := m.Geomean(alg); g < 1.0 {
			t.Fatalf("geomean %s = %v", alg, g)
		}
	}
	ap := Section45(m)
	for alg, p := range ap.PowerByAlg {
		if p.TotalMW <= 0 {
			t.Fatalf("power %s = %+v", alg, p)
		}
	}
	if !ap.Area.UnderOnePctSoC {
		t.Fatal("area share exceeds 1% of SoC")
	}
}

// TestInlineStudyPositive: inlining helps at least slightly on every
// benchmark (the §4.3 1.02x result).
func TestInlineStudyPositive(t *testing.T) {
	rows := InlineStudy(1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 0.99 {
			t.Errorf("%s: inline speedup %.3f < 0.99", r.Benchmark, r.Speedup)
		}
		if r.Speedup > 1.25 {
			t.Errorf("%s: inline speedup %.3f implausibly high", r.Benchmark, r.Speedup)
		}
	}
}

func TestFigure7BothModes(t *testing.T) {
	_, sumVL, resVL := Figure7(spamer.AlgBaseline)
	if sumVL.OnDemand == 0 || resVL.Pushed != resVL.Popped {
		t.Fatalf("VL: %+v", sumVL)
	}
	_, sumSp, _ := Figure7(spamer.AlgTuned)
	if sumSp.Speculative == 0 {
		t.Fatalf("tuned: %+v", sumSp)
	}
}

func TestAlgorithmsLegend(t *testing.T) {
	if got := AlgorithmsLegend(); len(got) != 3 || got[0] != "0delay" {
		t.Fatalf("legend = %v", got)
	}
}
