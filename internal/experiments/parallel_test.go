package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"spamer"
	"spamer/internal/harness"
	"spamer/internal/workloads"
)

// TestParallelRunsBitIdenticalToSequential is the harness determinism
// test: the same seed configs run sequentially and through the pool at
// high worker counts must produce per-run Results that are identical in
// every field (each sim.Kernel is single-threaded; parallelism exists
// only across independent systems).
func TestParallelRunsBitIdenticalToSequential(t *testing.T) {
	w, ok := workloads.ByName("ping-pong")
	if !ok {
		t.Fatal("ping-pong missing")
	}
	algs := spamer.Configs()

	var seq []spamer.Result
	for _, alg := range algs {
		seq = append(seq, w.Run(spamer.Config{Algorithm: alg, Deadline: 1 << 40}, 1))
	}

	var tasks []harness.Task[spamer.Result]
	for _, alg := range algs {
		tasks = append(tasks, runTask(w, spamer.Config{Algorithm: alg, Deadline: 1 << 40}, 1, alg))
	}
	outs, m := harness.Run(context.Background(), tasks, harness.Options{Workers: 8})
	if m.Failed != 0 {
		t.Fatalf("failures: %+v", m)
	}
	for i, o := range outs {
		if o.Value != seq[i] {
			t.Fatalf("parallel run %d (%s) diverged:\nparallel:   %+v\nsequential: %+v",
				i, algs[i], o.Value, seq[i])
		}
	}
}

// TestFigure11ParallelDeterministic: the assembled points are identical
// at any worker count.
func TestFigure11ParallelDeterministic(t *testing.T) {
	one, err := Figure11Parallel(context.Background(), "ping-pong", 1, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Figure11Parallel(context.Background(), "ping-pong", 1, harness.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Fatalf("Figure 11 points differ across worker counts:\n1: %+v\n8: %+v", one, many)
	}
}

// TestRunMatrixParallelCancelled: a cancelled context aborts the sweep
// with a structured error instead of running anything.
func TestRunMatrixParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunMatrixParallel(ctx, 1, harness.Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var he *harness.Error
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *harness.Error", err)
	}
}

// BenchmarkHarnessMatrix runs the full 8×4 evaluation matrix through
// the pool at one worker and at GOMAXPROCS workers — the wall-clock
// ratio on a multi-core host is the harness speedup.
func BenchmarkHarnessMatrix(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunMatrixParallel(context.Background(), 1, harness.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
