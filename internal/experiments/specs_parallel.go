package experiments

import (
	"context"

	"spamer"
	"spamer/internal/harness"
	"spamer/internal/workloads"
)

// SpecResult is one spec's slot in a RunSpecsParallel result: the
// outcomes of the algorithms that ran, plus the first failure if any
// run died (watchdog panic, timeout, cancellation) or the spec itself
// was invalid. Slots stay in spec order.
type SpecResult struct {
	Index    int
	Outcomes []Outcome
	Err      error
}

// RunSpecsParallel fans every (spec, algorithm) pair of the list across
// the harness pool and reassembles per-spec outcomes in spec order,
// with the exact SpeedupOverVL and Repeat semantics of the sequential
// Spec.Run. Invalid specs fail fast in their slot without occupying a
// worker; a failed run surfaces as its spec's Err while the other
// specs' results — and the spec's own completed algorithms — are kept.
func RunSpecsParallel(ctx context.Context, specs []Spec, opts harness.Options) []SpecResult {
	type algRun struct {
		out Outcome
		res spamer.Result
	}
	type slot struct{ spec, alg int }

	results := make([]SpecResult, len(specs))
	algsBySpec := make([][]string, len(specs))
	perSpec := make([][]*harness.Outcome[algRun], len(specs))
	var tasks []harness.Task[algRun]
	var slots []slot
	for i := range specs {
		s := &specs[i]
		results[i].Index = i
		if err := s.Validate(); err != nil {
			results[i].Err = err
			continue
		}
		algs := s.Algorithms
		if len(algs) == 0 {
			algs = spamer.Configs()
		}
		algsBySpec[i] = algs
		perSpec[i] = make([]*harness.Outcome[algRun], len(algs))
		w, _ := s.workload()
		scale := s.Scale
		if scale == 0 {
			scale = 1
		}
		for j, alg := range algs {
			alg := alg
			slots = append(slots, slot{spec: i, alg: j})
			tasks = append(tasks, harness.Task[algRun]{
				Label: s.Benchmark + "/" + alg,
				Run: func(ctx context.Context) (algRun, error) {
					o, res := s.runAlg(w, alg, scale)
					return algRun{out: o, res: res}, nil
				},
			})
		}
	}

	outs, _ := harness.Run(ctx, tasks, opts)
	for k := range outs {
		sl := slots[k]
		perSpec[sl.spec][sl.alg] = &outs[k]
	}

	// Reassemble each spec sequentially in algorithm order so the
	// running-baseline speedup normalization matches Spec.Run.
	for i := range specs {
		if results[i].Err != nil {
			continue
		}
		var base *spamer.Result
		for j, alg := range algsBySpec[i] {
			o := perSpec[i][j]
			if o.Err != nil {
				if results[i].Err == nil {
					results[i].Err = o.Err
				}
				continue
			}
			r := o.Value
			if alg == spamer.AlgBaseline {
				res := r.res
				base = &res
			}
			if base != nil {
				r.out.SpeedupOverVL = r.res.Speedup(*base)
			}
			results[i].Outcomes = append(results[i].Outcomes, r.out)
		}
	}
	return results
}

// Workload resolves the spec's benchmark, honouring the extensions
// gate. It is the exported face of the private workload() lookup for
// callers outside the package.
func (s *Spec) Workload() (*workloads.Workload, bool) { return s.workload() }
