package experiments

import (
	"context"

	"spamer/internal/core"
	"spamer/internal/harness"
)

// Ablation studies for the design choices DESIGN.md calls out, beyond
// the paper's own figures: the wider predictor space §3.5 sketches, the
// sensitivity to SRD sizing, interconnect topology (hop latency and
// channel count — the paper explicitly defers topology), and the cost
// of the §3.6 obfuscation mitigation.

// PredictorRow is one benchmark's speedups across every implemented
// delay algorithm (paper trio + extensions).
type PredictorRow struct {
	Benchmark string
	Speedups  map[string]float64 // algorithm name -> speedup over VL
}

// PredictorStudy runs every extended algorithm on every benchmark,
// fanned across the harness pool.
func PredictorStudy(scale int) []PredictorRow {
	rows, err := PredictorStudyParallel(context.Background(), scale, harness.Options{})
	if err != nil {
		panic(err)
	}
	return rows
}

// PredictorNames returns the column order for PredictorStudy output.
func PredictorNames() []string {
	var out []string
	for _, a := range core.ExtendedAlgorithms() {
		out = append(out, a.Name())
	}
	return out
}

// SweepPoint is one (x, value) sample of a sensitivity sweep.
type SweepPoint struct {
	X       int
	Ticks   uint64
	Speedup float64 // over the VL baseline at the same x
}

// SRDEntriesSweep varies the routing-device structure sizes on a
// benchmark, with the tuned algorithm (firewall by default exercises
// backpressure at small sizes; halo needs >= 48 linkTab rows).
func SRDEntriesSweep(bench string, sizes []int, scale int) ([]SweepPoint, error) {
	return SRDEntriesSweepParallel(context.Background(), bench, sizes, scale, harness.Options{})
}

// HopLatencySweep varies the one-way core<->device hop latency — the
// topology dimension the paper defers ("the impact of topology ... are
// not the focus of this paper").
func HopLatencySweep(bench string, hops []uint64, scale int) ([]SweepPoint, error) {
	return HopLatencySweepParallel(context.Background(), bench, hops, scale, harness.Options{})
}

// BusChannelsSweep varies the interconnect parallelism.
func BusChannelsSweep(bench string, channels []int, scale int) ([]SweepPoint, error) {
	return BusChannelsSweepParallel(context.Background(), bench, channels, scale, harness.Options{})
}

// DevicesSweep varies the number of routing devices — the multi-router
// arrangement §3.1 mentions but does not evaluate. Queues distribute
// round-robin, relieving per-device mapping-pipeline and send-port
// contention on many-queue workloads.
func DevicesSweep(bench string, devices []int, scale int) ([]SweepPoint, error) {
	return DevicesSweepParallel(context.Background(), bench, devices, scale, harness.Options{})
}

// ObfuscationRow compares a benchmark's tuned run with and without the
// §3.6 timing-obfuscation wrapper at a given jitter bound.
type ObfuscationRow struct {
	Benchmark string
	Jitter    uint64
	Plain     uint64  // ticks without obfuscation
	Obf       uint64  // ticks with obfuscation
	Overhead  float64 // Obf/Plain - 1
}

// ObfuscationStudy measures the performance cost of the side-channel
// mitigation across benchmarks, fanned across the harness pool.
func ObfuscationStudy(jitter uint64, scale int) []ObfuscationRow {
	rows, err := ObfuscationStudyParallel(context.Background(), jitter, scale, harness.Options{})
	if err != nil {
		panic(err)
	}
	return rows
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
