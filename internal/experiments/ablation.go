package experiments

import (
	"fmt"

	"spamer"
	"spamer/internal/core"
	"spamer/internal/vl"
	"spamer/internal/workloads"
)

// Ablation studies for the design choices DESIGN.md calls out, beyond
// the paper's own figures: the wider predictor space §3.5 sketches, the
// sensitivity to SRD sizing, interconnect topology (hop latency and
// channel count — the paper explicitly defers topology), and the cost
// of the §3.6 obfuscation mitigation.

// PredictorRow is one benchmark's speedups across every implemented
// delay algorithm (paper trio + extensions).
type PredictorRow struct {
	Benchmark string
	Speedups  map[string]float64 // algorithm name -> speedup over VL
}

// PredictorStudy runs every extended algorithm on every benchmark.
func PredictorStudy(scale int) []PredictorRow {
	var rows []PredictorRow
	for _, w := range workloads.All() {
		base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 40}, scale)
		row := PredictorRow{Benchmark: w.Name, Speedups: map[string]float64{}}
		for _, alg := range core.ExtendedAlgorithms() {
			res := w.Run(spamer.Config{Algorithm: "custom", CustomAlgorithm: alg, Deadline: 1 << 40}, scale)
			row.Speedups[alg.Name()] = res.Speedup(base)
		}
		rows = append(rows, row)
	}
	return rows
}

// PredictorNames returns the column order for PredictorStudy output.
func PredictorNames() []string {
	var out []string
	for _, a := range core.ExtendedAlgorithms() {
		out = append(out, a.Name())
	}
	return out
}

// SweepPoint is one (x, value) sample of a sensitivity sweep.
type SweepPoint struct {
	X       int
	Ticks   uint64
	Speedup float64 // over the VL baseline at the same x
}

// SRDEntriesSweep varies the routing-device structure sizes on a
// benchmark, with the tuned algorithm (firewall by default exercises
// backpressure at small sizes; halo needs >= 48 linkTab rows).
func SRDEntriesSweep(bench string, sizes []int, scale int) ([]SweepPoint, error) {
	w, ok := workloads.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	var out []SweepPoint
	for _, n := range sizes {
		cfg := vl.Config{ProdEntries: n, ConsEntries: n, LinkEntries: maxInt(n, 64)}
		base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, SRD: cfg, Deadline: 1 << 40}, scale)
		res := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, SRD: cfg, Deadline: 1 << 40}, scale)
		out = append(out, SweepPoint{X: n, Ticks: res.Ticks, Speedup: res.Speedup(base)})
	}
	return out, nil
}

// HopLatencySweep varies the one-way core<->device hop latency — the
// topology dimension the paper defers ("the impact of topology ... are
// not the focus of this paper").
func HopLatencySweep(bench string, hops []uint64, scale int) ([]SweepPoint, error) {
	w, ok := workloads.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	var out []SweepPoint
	for _, h := range hops {
		base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, HopLatency: h, Deadline: 1 << 40}, scale)
		res := w.Run(spamer.Config{Algorithm: spamer.AlgZeroDelay, HopLatency: h, Deadline: 1 << 40}, scale)
		out = append(out, SweepPoint{X: int(h), Ticks: res.Ticks, Speedup: res.Speedup(base)})
	}
	return out, nil
}

// BusChannelsSweep varies the interconnect parallelism.
func BusChannelsSweep(bench string, channels []int, scale int) ([]SweepPoint, error) {
	w, ok := workloads.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	var out []SweepPoint
	for _, c := range channels {
		base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, BusChannels: c, Deadline: 1 << 40}, scale)
		res := w.Run(spamer.Config{Algorithm: spamer.AlgZeroDelay, BusChannels: c, Deadline: 1 << 40}, scale)
		out = append(out, SweepPoint{X: c, Ticks: res.Ticks, Speedup: res.Speedup(base)})
	}
	return out, nil
}

// DevicesSweep varies the number of routing devices — the multi-router
// arrangement §3.1 mentions but does not evaluate. Queues distribute
// round-robin, relieving per-device mapping-pipeline and send-port
// contention on many-queue workloads.
func DevicesSweep(bench string, devices []int, scale int) ([]SweepPoint, error) {
	w, ok := workloads.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	var out []SweepPoint
	for _, d := range devices {
		base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Devices: d, Deadline: 1 << 40}, scale)
		res := w.Run(spamer.Config{Algorithm: spamer.AlgZeroDelay, Devices: d, Deadline: 1 << 40}, scale)
		out = append(out, SweepPoint{X: d, Ticks: res.Ticks, Speedup: res.Speedup(base)})
	}
	return out, nil
}

// ObfuscationRow compares a benchmark's tuned run with and without the
// §3.6 timing-obfuscation wrapper at a given jitter bound.
type ObfuscationRow struct {
	Benchmark string
	Jitter    uint64
	Plain     uint64  // ticks without obfuscation
	Obf       uint64  // ticks with obfuscation
	Overhead  float64 // Obf/Plain - 1
}

// ObfuscationStudy measures the performance cost of the side-channel
// mitigation across benchmarks.
func ObfuscationStudy(jitter uint64, scale int) []ObfuscationRow {
	var rows []ObfuscationRow
	for _, w := range workloads.All() {
		plain := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 40}, scale)
		obf := w.Run(spamer.Config{
			Algorithm:       "custom",
			CustomAlgorithm: core.Obfuscated{Inner: core.NewTuned(), Key: 0x5eed, MaxJitter: jitter},
			Deadline:        1 << 40,
		}, scale)
		rows = append(rows, ObfuscationRow{
			Benchmark: w.Name,
			Jitter:    jitter,
			Plain:     plain.Ticks,
			Obf:       obf.Ticks,
			Overhead:  float64(obf.Ticks)/float64(plain.Ticks) - 1,
		})
	}
	return rows
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
