package experiments

import (
	"strings"
	"testing"

	"spamer/internal/traffic"
	"spamer/internal/workloads"
)

const openLoopSpecJSON = `{
  "shape": {
    "stages": 3, "messages": 300, "lines": 4, "window": 8,
    "arrival": {"process": "mmpp", "seed": 17, "mean_gap": 90, "users": 4}
  },
  "algorithms": ["vl", "tuned"],
  "domains": 4
}`

// TestShapeSpecJSON pins the spec-JSON wiring of open-loop shapes: a
// shape spec parses, validates, runs on the parallel kernel, and reports
// the shape's diagnostic name.
func TestShapeSpecJSON(t *testing.T) {
	specs, err := ReadSpecs(strings.NewReader(openLoopSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Shape == nil {
		t.Fatalf("parsed %+v", specs)
	}
	outs, err := specs[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outs))
	}
	for _, o := range outs {
		if o.Messages != 2*300 {
			t.Fatalf("%s pushed %d messages, want %d", o.Algorithm, o.Messages, 2*300)
		}
		if !strings.HasPrefix(o.Benchmark, "synthetic/chain-s3-m300-ol:mmpp") {
			t.Fatalf("outcome benchmark %q does not carry the shape name", o.Benchmark)
		}
	}
}

// TestShapeSpecValidate pins shape-spec validation rules.
func TestShapeSpecValidate(t *testing.T) {
	sh := &workloads.Shape{Stages: 2, Messages: 10,
		Arrival: &traffic.Spec{MeanGap: 50}}
	ok := Spec{Shape: sh}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	named := Spec{Benchmark: "synthetic", Shape: sh}
	if err := named.Validate(); err != nil {
		t.Fatal(err)
	}
	clash := Spec{Benchmark: "FIR", Shape: sh}
	if err := clash.Validate(); err == nil {
		t.Fatal("shape + core benchmark name should not validate")
	}
	fan := Spec{Shape: &workloads.Shape{Producers: 2, Messages: 10}, Domains: 2}
	if err := fan.Validate(); err == nil {
		t.Fatal("fan shape with domains > 0 should not validate (not parallel-safe)")
	}
	badArr := Spec{Shape: &workloads.Shape{Stages: 2, Messages: 10,
		Arrival: &traffic.Spec{Process: "nope", MeanGap: 1}}}
	if err := badArr.Validate(); err == nil {
		t.Fatal("invalid arrival process should not validate")
	}
}

// TestShapeSpecHash pins the content address of shape specs: omitted
// defaults, explicit defaults, and the empty-vs-"synthetic" benchmark
// spelling all hash identically; different arrival knobs do not.
func TestShapeSpecHash(t *testing.T) {
	a := Spec{Shape: &workloads.Shape{Stages: 2, Messages: 20,
		Arrival: &traffic.Spec{MeanGap: 70}}}
	b := Spec{Benchmark: "synthetic", Shape: &workloads.Shape{Stages: 2, Messages: 20, Producers: 1, Lines: 2,
		Arrival: &traffic.Spec{Process: "poisson", MeanGap: 70, Users: 1}}}
	if a.Hash() != b.Hash() {
		t.Fatalf("equivalent shape specs hash differently:\n%s\n%s", a.Hash(), b.Hash())
	}
	c := Spec{Shape: &workloads.Shape{Stages: 2, Messages: 20,
		Arrival: &traffic.Spec{MeanGap: 70, Users: 2}}}
	if a.Hash() == c.Hash() {
		t.Fatal("different arrival populations must hash differently")
	}
}
