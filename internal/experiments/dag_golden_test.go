package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"spamer"
)

// Golden dispatch-trace hashes for the three checked-in DAG reference
// scenarios (scenarios/*.json): the telemetry-aggregation pipeline
// (open-loop Poisson intake, pair + shard edges), the RPC-microservice
// DAG (recorded-trace replay client, diamond fan-out/fan-in), and the
// MapReduce-style shuffle (4x4 shard exchange). Each is pinned on the
// sequential kernel and on the multi-domain kernel — where every
// domain count 1/2/4/8/16 must reproduce the identical trace — under
// the VL baseline and the tuned SPAMeR algorithm. Any edit to a
// scenario file, the DAG compiler, the trace loader, or the kernels
// that reorders even one event moves a hash and fails here.
var goldenDAGScenarios = []struct {
	file     string
	alg      string
	seqHash  uint64
	seqTicks uint64
	parHash  uint64
	parTicks uint64
	messages uint64
}{
	{"telemetry.json", spamer.AlgBaseline, 0xf555436beeb905e0, 6290, 0xa18351a13c22a3cf, 6290, 180},
	{"telemetry.json", spamer.AlgTuned, 0x786253195ca0dfd5, 6507, 0xd66e0584028d6e70, 6415, 180},
	{"rpc.json", spamer.AlgBaseline, 0xf2c9255086e56213, 13311, 0x22b0ffed26f256dd, 13311, 256},
	{"rpc.json", spamer.AlgTuned, 0x5634042b59f23b83, 13945, 0x6c62d9370d2c24dc, 13945, 256},
	{"shuffle.json", spamer.AlgBaseline, 0x3465739a20708806, 2267, 0x6ba5109a73c24757, 2284, 192},
	{"shuffle.json", spamer.AlgTuned, 0xc4a12023856893c2, 1807, 0xaa5767688e3ea727, 1807, 192},
}

// loadScenario reads one checked-in scenario spec and resolves its
// replay traces, exactly as cmd/spamer-run would.
func loadScenario(t testing.TB, file string) Spec {
	t.Helper()
	dir := filepath.Join("..", "..", "scenarios")
	f, err := os.Open(filepath.Join(dir, file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	specs, err := ReadSpecs(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := ResolveTraceFiles(specs, dir); err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("%s: %d specs, want 1", file, len(specs))
	}
	if err := specs[0].Validate(); err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return specs[0]
}

// TestGoldenDAGScenarios pins the dispatch traces of the reference DAG
// scenarios on both kernels. The parallel sweep runs every domain
// count (1/2/4/8/16) against one golden hash, proving lane count never
// leaks into the trace on DAG topologies (shard exchanges, diamond
// merges, open-loop and replayed sources).
func TestGoldenDAGScenarios(t *testing.T) {
	for _, tc := range goldenDAGScenarios {
		tc := tc
		t.Run(tc.file+"/"+tc.alg, func(t *testing.T) {
			sp := loadScenario(t, tc.file)
			w := sp.Shape.Workload()
			if !w.ParallelSafe {
				t.Fatalf("%s must be parallel-safe", tc.file)
			}

			cfg := sp.SystemConfig(tc.alg)
			cfg.Domains = 0
			sys := spamer.NewSystem(cfg)
			sys.EnableDispatchTrace()
			w.Build(sys, 1)
			res := sys.Run()
			if h := sys.DispatchTraceHash(); h != tc.seqHash {
				t.Errorf("sequential trace hash = %#x, golden %#x", h, tc.seqHash)
			}
			if res.Ticks != tc.seqTicks {
				t.Errorf("sequential ticks = %d, golden %d", res.Ticks, tc.seqTicks)
			}
			if res.Pushed != tc.messages || res.Popped != tc.messages {
				t.Errorf("pushed/popped = %d/%d, want %d", res.Pushed, res.Popped, tc.messages)
			}

			for _, domains := range []int{1, 2, 4, 8, 16} {
				cfg.Domains = domains
				psys := spamer.NewSystem(cfg)
				psys.EnableDispatchTrace()
				w.Build(psys, 1)
				pres := psys.Run()
				if h := psys.DispatchTraceHash(); h != tc.parHash {
					t.Errorf("domains=%d: trace hash = %#x, golden %#x (lane count leaked into the trace)",
						domains, h, tc.parHash)
				}
				if pres.Ticks != tc.parTicks {
					t.Errorf("domains=%d: ticks = %d, golden %d", domains, pres.Ticks, tc.parTicks)
				}
				if pres.Pushed != tc.messages || pres.Popped != tc.messages {
					t.Errorf("domains=%d: pushed/popped = %d/%d, want %d",
						domains, pres.Pushed, pres.Popped, tc.messages)
				}
			}
		})
	}
}

// TestDAGScenarioCacheHash proves DAG scenarios content-address
// stably: the canonical hash is invariant under re-reading the same
// file, covers resolved trace events (two different traces behind one
// filename cannot alias), and distinguishes the three scenarios.
func TestDAGScenarioCacheHash(t *testing.T) {
	seen := map[string]string{}
	for _, file := range []string{"telemetry.json", "rpc.json", "shuffle.json"} {
		a := loadScenario(t, file).Hash()
		b := loadScenario(t, file).Hash()
		if a != b {
			t.Errorf("%s: hash not stable across reads: %s vs %s", file, a, b)
		}
		if prev, dup := seen[a]; dup {
			t.Errorf("%s and %s hash identically", file, prev)
		}
		seen[a] = file
	}
	// Mutating one resolved replay event must move the hash: the cache
	// key covers trace content, not the file reference.
	sp := loadScenario(t, "rpc.json")
	before := sp.Hash()
	sp.Shape.DAG.Stages[0].Replay[0].Work++
	if sp.Hash() == before {
		t.Error("hash ignores resolved replay events")
	}
}
