package experiments

import (
	"context"
	"fmt"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/core"
	"spamer/internal/energy"
	"spamer/internal/harness"
	"spamer/internal/vl"
	"spamer/internal/workloads"
)

// This file fans the evaluation entry points across the bounded worker
// pool of internal/harness. Every simulator run is an independent,
// deterministic spamer.System, so parallel execution with ordered
// result assembly is observably identical to the sequential loops the
// *Parallel variants replace — the sequential names now delegate here
// with a single worker's semantics preserved at any worker count.

// runTask wraps one workload run as a harness task. The simulator is
// CPU-bound and single-threaded per system; cancellation is honoured at
// dispatch (a cancelled task never starts) and runaway systems are
// bounded by the kernel watchdog, whose panic the harness converts into
// the run's structured error.
func runTask(w *workloads.Workload, cfg spamer.Config, scale int, label string) harness.Task[spamer.Result] {
	return harness.Task[spamer.Result]{
		Label: label,
		Run: func(ctx context.Context) (spamer.Result, error) {
			return w.Run(cfg, scale), nil
		},
	}
}

// RunMatrixParallel executes every benchmark under every configuration
// on the harness pool, preserving the exact per-cell results of the
// sequential RunMatrix.
func RunMatrixParallel(ctx context.Context, scale int, opts harness.Options) (*Matrix, error) {
	m := &Matrix{
		Benchmarks: workloads.Names(),
		Configs:    spamer.Configs(),
		Results:    map[string]map[string]spamer.Result{},
	}
	type cell struct{ bench, alg string }
	var cells []cell
	var tasks []harness.Task[spamer.Result]
	for _, w := range workloads.All() {
		for _, alg := range m.Configs {
			cells = append(cells, cell{w.Name, alg})
			tasks = append(tasks, runTask(w,
				spamer.Config{Algorithm: alg, Deadline: 1 << 40}, scale, w.Name+"/"+alg))
		}
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		c := cells[i]
		if m.Results[c.bench] == nil {
			m.Results[c.bench] = map[string]spamer.Result{}
		}
		m.Results[c.bench][c.alg] = o.Value
	}
	return m, nil
}

// Figure11Parallel sweeps one benchmark's Figure 11 points on the pool:
// the baseline, the three named algorithms, and the tuned-parameter
// grid all run concurrently; normalization happens after assembly.
func Figure11Parallel(ctx context.Context, benchName string, scale int, opts harness.Options) ([]Figure11Point, error) {
	w, ok := workloads.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", benchName)
	}
	named := []string{spamer.AlgZeroDelay, spamer.AlgAdaptive, spamer.AlgTuned}
	var grid []config.TunedParams
	for _, p := range Figure11Grid() {
		if p == config.DefaultTuned() {
			continue // already covered by the named tuned point
		}
		grid = append(grid, p)
	}

	tasks := []harness.Task[spamer.Result]{
		runTask(w, spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 40}, scale, benchName+"/vl"),
	}
	for _, alg := range named {
		tasks = append(tasks, runTask(w,
			spamer.Config{Algorithm: alg, Deadline: 1 << 40}, scale, benchName+"/"+alg))
	}
	for _, p := range grid {
		tasks = append(tasks, runTask(w,
			spamer.Config{Algorithm: spamer.AlgTuned, Tuned: p, Deadline: 1 << 40}, scale,
			benchName+"/tuned{"+p.String()+"}"))
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	results, err := harness.Values(outs)
	if err != nil {
		return nil, err
	}

	base := results[0]
	points := []Figure11Point{{Label: "VL(baseline)", DelayNorm: 1, EnergyNorm: 1}}
	for i, alg := range named {
		res := results[1+i]
		points = append(points, Figure11Point{
			Label:      "SPAMeR(" + alg + ")",
			DelayNorm:  energy.DelayNorm(res, base),
			EnergyNorm: energy.EnergyNorm(res, base),
		})
	}
	for i, p := range grid {
		res := results[1+len(named)+i]
		points = append(points, Figure11Point{
			Label:      "tuned{" + p.String() + "}",
			Params:     p,
			DelayNorm:  energy.DelayNorm(res, base),
			EnergyNorm: energy.EnergyNorm(res, base),
		})
	}
	return points, nil
}

// InlineStudyParallel runs the §4.3 inlining comparison with both
// variants of every benchmark in flight at once.
func InlineStudyParallel(ctx context.Context, scale int, opts harness.Options) ([]InlineStudyRow, error) {
	all := workloads.All()
	var tasks []harness.Task[spamer.Result]
	for _, w := range all {
		tasks = append(tasks,
			runTask(w, spamer.Config{Algorithm: spamer.AlgBaseline, NoInline: true, Deadline: 1 << 40}, scale, w.Name+"/called"),
			runTask(w, spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 40}, scale, w.Name+"/inlined"))
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	results, err := harness.Values(outs)
	if err != nil {
		return nil, err
	}
	var rows []InlineStudyRow
	for i, w := range all {
		called, inlined := results[2*i], results[2*i+1]
		rows = append(rows, InlineStudyRow{Benchmark: w.Name, Speedup: inlined.Speedup(called)})
	}
	return rows, nil
}

// PredictorStudyParallel runs every extended delay algorithm on every
// benchmark concurrently.
func PredictorStudyParallel(ctx context.Context, scale int, opts harness.Options) ([]PredictorRow, error) {
	all := workloads.All()
	algs := core.ExtendedAlgorithms()
	var tasks []harness.Task[spamer.Result]
	for _, w := range all {
		tasks = append(tasks, runTask(w,
			spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 40}, scale, w.Name+"/vl"))
		for _, alg := range algs {
			tasks = append(tasks, runTask(w,
				spamer.Config{Algorithm: "custom", CustomAlgorithm: alg, Deadline: 1 << 40}, scale,
				w.Name+"/"+alg.Name()))
		}
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	results, err := harness.Values(outs)
	if err != nil {
		return nil, err
	}
	stride := 1 + len(algs)
	var rows []PredictorRow
	for i, w := range all {
		base := results[i*stride]
		row := PredictorRow{Benchmark: w.Name, Speedups: map[string]float64{}}
		for j, alg := range algs {
			row.Speedups[alg.Name()] = results[i*stride+1+j].Speedup(base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sweepParallel runs one sweep point per task; each task pairs the
// baseline and SPAMeR runs so the speedup stays an apples-to-apples
// comparison at the same x.
func sweepParallel(ctx context.Context, bench string, xs []int,
	cfgs func(x int) (base, spec spamer.Config), scale int, opts harness.Options) ([]SweepPoint, error) {
	w, ok := workloads.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	var tasks []harness.Task[SweepPoint]
	for _, x := range xs {
		x := x
		tasks = append(tasks, harness.Task[SweepPoint]{
			Label: fmt.Sprintf("%s/x=%d", bench, x),
			Run: func(ctx context.Context) (SweepPoint, error) {
				baseCfg, specCfg := cfgs(x)
				base := w.Run(baseCfg, scale)
				res := w.Run(specCfg, scale)
				return SweepPoint{X: x, Ticks: res.Ticks, Speedup: res.Speedup(base)}, nil
			},
		})
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	return harness.Values(outs)
}

// SRDEntriesSweepParallel is SRDEntriesSweep on the harness pool.
func SRDEntriesSweepParallel(ctx context.Context, bench string, sizes []int, scale int, opts harness.Options) ([]SweepPoint, error) {
	return sweepParallel(ctx, bench, sizes, func(n int) (spamer.Config, spamer.Config) {
		cfg := vl.Config{ProdEntries: n, ConsEntries: n, LinkEntries: maxInt(n, 64)}
		return spamer.Config{Algorithm: spamer.AlgBaseline, SRD: cfg, Deadline: 1 << 40},
			spamer.Config{Algorithm: spamer.AlgTuned, SRD: cfg, Deadline: 1 << 40}
	}, scale, opts)
}

// HopLatencySweepParallel is HopLatencySweep on the harness pool.
func HopLatencySweepParallel(ctx context.Context, bench string, hops []uint64, scale int, opts harness.Options) ([]SweepPoint, error) {
	xs := make([]int, len(hops))
	for i, h := range hops {
		xs[i] = int(h)
	}
	return sweepParallel(ctx, bench, xs, func(h int) (spamer.Config, spamer.Config) {
		return spamer.Config{Algorithm: spamer.AlgBaseline, HopLatency: uint64(h), Deadline: 1 << 40},
			spamer.Config{Algorithm: spamer.AlgZeroDelay, HopLatency: uint64(h), Deadline: 1 << 40}
	}, scale, opts)
}

// BusChannelsSweepParallel is BusChannelsSweep on the harness pool.
func BusChannelsSweepParallel(ctx context.Context, bench string, channels []int, scale int, opts harness.Options) ([]SweepPoint, error) {
	return sweepParallel(ctx, bench, channels, func(c int) (spamer.Config, spamer.Config) {
		return spamer.Config{Algorithm: spamer.AlgBaseline, BusChannels: c, Deadline: 1 << 40},
			spamer.Config{Algorithm: spamer.AlgZeroDelay, BusChannels: c, Deadline: 1 << 40}
	}, scale, opts)
}

// DevicesSweepParallel is DevicesSweep on the harness pool.
func DevicesSweepParallel(ctx context.Context, bench string, devices []int, scale int, opts harness.Options) ([]SweepPoint, error) {
	return sweepParallel(ctx, bench, devices, func(d int) (spamer.Config, spamer.Config) {
		return spamer.Config{Algorithm: spamer.AlgBaseline, Devices: d, Deadline: 1 << 40},
			spamer.Config{Algorithm: spamer.AlgZeroDelay, Devices: d, Deadline: 1 << 40}
	}, scale, opts)
}

// ObfuscationStudyParallel measures the §3.6 mitigation cost with the
// plain/obfuscated pair of every benchmark in flight at once.
func ObfuscationStudyParallel(ctx context.Context, jitter uint64, scale int, opts harness.Options) ([]ObfuscationRow, error) {
	all := workloads.All()
	var tasks []harness.Task[spamer.Result]
	for _, w := range all {
		tasks = append(tasks,
			runTask(w, spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 40}, scale, w.Name+"/plain"),
			runTask(w, spamer.Config{
				Algorithm:       "custom",
				CustomAlgorithm: core.Obfuscated{Inner: core.NewTuned(), Key: 0x5eed, MaxJitter: jitter},
				Deadline:        1 << 40,
			}, scale, w.Name+"/obfuscated"))
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	results, err := harness.Values(outs)
	if err != nil {
		return nil, err
	}
	var rows []ObfuscationRow
	for i, w := range all {
		plain, obf := results[2*i], results[2*i+1]
		rows = append(rows, ObfuscationRow{
			Benchmark: w.Name,
			Jitter:    jitter,
			Plain:     plain.Ticks,
			Obf:       obf.Ticks,
			Overhead:  float64(obf.Ticks)/float64(plain.Ticks) - 1,
		})
	}
	return rows, nil
}

// SoftwareQueueStudyParallel runs the six independent stack builds of
// the software-queue study concurrently.
func SoftwareQueueStudyParallel(ctx context.Context, opts harness.Options) ([]SoftwareQueueStudyRow, error) {
	tasks := []harness.Task[uint64]{
		{Label: "chain3/sw", Run: func(context.Context) (uint64, error) { return swChain(), nil }},
		{Label: "chain3/vl", Run: func(context.Context) (uint64, error) { return hwChain(spamer.AlgBaseline), nil }},
		{Label: "chain3/spamer", Run: func(context.Context) (uint64, error) { return hwChain(spamer.AlgZeroDelay), nil }},
		{Label: "incast4/sw", Run: func(context.Context) (uint64, error) { return swIncast(), nil }},
		{Label: "incast4/vl", Run: func(context.Context) (uint64, error) { return hwIncast(spamer.AlgBaseline), nil }},
		{Label: "incast4/spamer", Run: func(context.Context) (uint64, error) { return hwIncast(spamer.AlgZeroDelay), nil }},
	}
	outs, _ := harness.Run(ctx, tasks, opts)
	ticks, err := harness.Values(outs)
	if err != nil {
		return nil, err
	}
	rows := []SoftwareQueueStudyRow{
		{Workload: "chain3", SWTicks: ticks[0], VLTicks: ticks[1], SpTicks: ticks[2]},
		{Workload: "incast4", SWTicks: ticks[3], VLTicks: ticks[4], SpTicks: ticks[5]},
	}
	for i := range rows {
		r := &rows[i]
		r.VLOverSW = float64(r.SWTicks) / float64(r.VLTicks)
		r.SpOverSW = float64(r.SWTicks) / float64(r.SpTicks)
	}
	return rows, nil
}
