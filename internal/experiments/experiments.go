// Package experiments regenerates every table and figure of the paper's
// evaluation section from the simulator. Each experiment returns plain
// data; cmd/* renders it with internal/report, and the root bench suite
// wraps each in a testing.B benchmark.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/core"
	"spamer/internal/energy"
	"spamer/internal/harness"
	"spamer/internal/swqueue"
	"spamer/internal/trace"
	"spamer/internal/workloads"
)

// Matrix holds one result per (benchmark, configuration) — the common
// input of Figures 8, 9 and 10.
type Matrix struct {
	Benchmarks []string
	Configs    []string
	Results    map[string]map[string]spamer.Result
}

// RunMatrix executes every benchmark under every configuration. It
// fans the independent cells across the harness pool; results are
// identical to a sequential loop (each cell is a deterministic,
// single-threaded system).
func RunMatrix(scale int) *Matrix {
	m, err := RunMatrixParallel(context.Background(), scale, harness.Options{})
	if err != nil {
		panic(err)
	}
	return m
}

// Speedup returns benchmark b's speedup of alg over the VL baseline.
func (m *Matrix) Speedup(b, alg string) float64 {
	return m.Results[b][alg].Speedup(m.Results[b][spamer.AlgBaseline])
}

// Geomean returns the geometric-mean speedup of alg across benchmarks.
func (m *Matrix) Geomean(alg string) float64 {
	sum := 0.0
	for _, b := range m.Benchmarks {
		sum += math.Log(m.Speedup(b, alg))
	}
	return math.Exp(sum / float64(len(m.Benchmarks)))
}

// ---------------------------------------------------------------------
// Tables 1 and 2.
// ---------------------------------------------------------------------

// Table1Rows returns the simulated hardware configuration.
func Table1Rows() [][]string {
	rows := [][]string{{"Component", "Configuration"}}
	for _, kv := range config.Table1() {
		rows = append(rows, []string{kv[0], kv[1]})
	}
	return rows
}

// Table2Rows returns the benchmark descriptions and queue shapes.
func Table2Rows() [][]string {
	rows := [][]string{{"Benchmark", "Description", "(M:N)xk", "Threads"}}
	for _, w := range workloads.All() {
		rows = append(rows, []string{w.Name, w.Desc, w.QueueSpec, fmt.Sprint(w.Threads)})
	}
	return rows
}

// ---------------------------------------------------------------------
// Figure 1: latency comparison.
// ---------------------------------------------------------------------

// Figure1 runs the latency micro-experiment.
func Figure1() swqueue.Figure1Result { return swqueue.RunFigure1() }

// ---------------------------------------------------------------------
// Figure 7: message-queue transaction trace.
// ---------------------------------------------------------------------

// Figure7 runs the tracing experiment for a given algorithm.
func Figure7(alg string) (*trace.Tracer, trace.Summary, spamer.Result) {
	tr, res := trace.RunFigure7(trace.DefaultFigure7(alg))
	return tr, trace.Summarize(tr.Transactions()), res
}

// ---------------------------------------------------------------------
// Figure 8: speedup over Virtual-Link.
// ---------------------------------------------------------------------

// Figure8Row is one benchmark's line of the speedup chart.
type Figure8Row struct {
	Benchmark  string
	BaselineMS float64
	Speedups   map[string]float64 // per SPAMeR algorithm
}

// Figure8 derives the speedup rows (and paper reference geomeans:
// 1.45/1.25/1.33 for 0delay/adapt/tuned).
func Figure8(m *Matrix) []Figure8Row {
	var rows []Figure8Row
	for _, b := range m.Benchmarks {
		row := Figure8Row{
			Benchmark:  b,
			BaselineMS: m.Results[b][spamer.AlgBaseline].MS,
			Speedups:   map[string]float64{},
		}
		for _, alg := range m.Configs[1:] {
			row.Speedups[alg] = m.Speedup(b, alg)
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------
// Figure 9: execution-time breakdown (consumer-line empty vs non-empty).
// ---------------------------------------------------------------------

// Figure9Cell is the per-(benchmark, config) breakdown in millions of
// cycles, averaged per consumer line as in the paper.
type Figure9Cell struct {
	EmptyM    float64
	NonEmptyM float64
}

// Figure9 derives the breakdown cells.
func Figure9(m *Matrix) map[string]map[string]Figure9Cell {
	out := map[string]map[string]Figure9Cell{}
	for _, b := range m.Benchmarks {
		out[b] = map[string]Figure9Cell{}
		for _, alg := range m.Configs {
			r := m.Results[b][alg]
			out[b][alg] = Figure9Cell{
				EmptyM:    r.AvgEmptyTicks / 1e6,
				NonEmptyM: r.AvgNonEmptyTicks / 1e6,
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 10: push failure rates and bus utilization.
// ---------------------------------------------------------------------

// Figure10Cell carries both 10a and 10b metrics.
type Figure10Cell struct {
	FailureRate    float64
	BusUtilization float64
}

// Figure10 derives the failure-rate and bus-utilization cells.
func Figure10(m *Matrix) map[string]map[string]Figure10Cell {
	out := map[string]map[string]Figure10Cell{}
	for _, b := range m.Benchmarks {
		out[b] = map[string]Figure10Cell{}
		for _, alg := range m.Configs {
			r := m.Results[b][alg]
			out[b][alg] = Figure10Cell{
				FailureRate:    r.FailureRate(),
				BusUtilization: r.BusUtilization,
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 11: sensitivity of the tuned parameters (delay vs energy).
// ---------------------------------------------------------------------

// Figure11Point is one marker of a Figure 11 panel.
type Figure11Point struct {
	Label      string
	Params     config.TunedParams // zero for the named algorithms
	DelayNorm  float64
	EnergyNorm float64
}

// Figure11Grid returns the tuned-parameter combinations swept in
// addition to the named algorithms: variations of each parameter around
// the paper's chosen set (ζ=256, τ=96, δ=64, α=1, β=2).
func Figure11Grid() []config.TunedParams {
	base := config.DefaultTuned()
	var grid []config.TunedParams
	add := func(p config.TunedParams) {
		for _, g := range grid {
			if g == p {
				return
			}
		}
		grid = append(grid, p)
	}
	for _, zeta := range []uint64{128, 256, 512} {
		p := base
		p.Zeta = zeta
		add(p)
	}
	for _, tau := range []uint64{48, 96, 192} {
		p := base
		p.Tau = tau
		add(p)
	}
	for _, delta := range []uint64{16, 64, 128} {
		p := base
		p.Delta = delta
		add(p)
	}
	for _, alpha := range []uint64{1, 2} {
		p := base
		p.Alpha = alpha
		add(p)
	}
	for _, beta := range []uint64{2, 4} {
		p := base
		p.Beta = beta
		add(p)
	}
	sort.SliceStable(grid, func(i, j int) bool { return grid[i].String() < grid[j].String() })
	return grid
}

// Figure11 sweeps one benchmark: baseline, the three named algorithms,
// and the tuned-parameter grid, returning normalized (delay, energy)
// points. The baseline is the (1, 1) reference. Runs fan across the
// harness pool.
func Figure11(benchName string, scale int) ([]Figure11Point, error) {
	return Figure11Parallel(context.Background(), benchName, scale, harness.Options{})
}

// ---------------------------------------------------------------------
// §4.3 inlining study and §4.5 area/power.
// ---------------------------------------------------------------------

// InlineStudy measures the library-inlining speedup per benchmark
// (paper: 1.02x average) on the VL baseline.
type InlineStudyRow struct {
	Benchmark string
	Speedup   float64
}

// InlineStudy runs every benchmark with and without inlined queue
// functions, fanned across the harness pool.
func InlineStudy(scale int) []InlineStudyRow {
	rows, err := InlineStudyParallel(context.Background(), scale, harness.Options{})
	if err != nil {
		panic(err)
	}
	return rows
}

// AreaPower bundles the §4.5 estimates for a measured matrix: the area
// report plus per-algorithm worst-case power across benchmarks.
type AreaPower struct {
	Area       energy.AreaReport
	PowerByAlg map[string]energy.PowerReport
}

// Section45 computes the area/power summary from a matrix.
func Section45(m *Matrix) AreaPower {
	ap := AreaPower{Area: energy.Area(0), PowerByAlg: map[string]energy.PowerReport{}}
	for _, alg := range m.Configs[1:] {
		worst := 1.0
		for _, b := range m.Benchmarks {
			f := energy.PushFactor(m.Results[b][alg], m.Results[b][spamer.AlgBaseline])
			if f > worst {
				worst = f
			}
		}
		ap.PowerByAlg[alg] = energy.Power(worst)
	}
	return ap
}

// AlgorithmsLegend names the delay algorithms for display.
func AlgorithmsLegend() []string {
	out := []string{}
	for _, a := range core.Algorithms() {
		out = append(out, a.Name())
	}
	return out
}
