package experiments

import (
	"strings"
	"testing"

	"spamer"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Benchmark: "FIR"}, true},
		{Spec{}, false},
		{Spec{Benchmark: "nope"}, false},
		{Spec{Benchmark: "FIR", Algorithms: []string{"vl", "bogus"}}, false},
		{Spec{Benchmark: "FIR", Algorithms: []string{"history", "dyntuned"}}, true},
		{Spec{Benchmark: "allreduce"}, false}, // extended needs opt-in
		{Spec{Benchmark: "allreduce", Extensions: &Extensions{AllowExtendedWorkloads: true}}, true},
		{Spec{Benchmark: "FIR", Scale: -1}, false},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestSpecRunProducesOutcomes(t *testing.T) {
	s := Spec{Benchmark: "firewall", Algorithms: []string{"vl", "tuned"}, Label: "x"}
	outs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if outs[0].Algorithm != "vl" || outs[0].SpeedupOverVL != 1.0 {
		t.Fatalf("baseline outcome: %+v", outs[0])
	}
	if outs[1].SpeedupOverVL <= 1.0 {
		t.Fatalf("tuned not faster: %+v", outs[1])
	}
	if outs[1].Label != "x" || outs[1].Messages == 0 {
		t.Fatalf("outcome fields: %+v", outs[1])
	}
}

func TestSpecRepeatChecksDeterminism(t *testing.T) {
	s := Spec{Benchmark: "ping-pong", Algorithms: []string{"tuned"}, Repeat: 2}
	outs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Deterministic == nil || !*outs[0].Deterministic {
		t.Fatalf("determinism flag: %+v", outs[0])
	}
}

func TestSpecOverridesApply(t *testing.T) {
	slow := Spec{Benchmark: "ping-pong", Algorithms: []string{"vl"}, HopLatency: 48}
	fast := Spec{Benchmark: "ping-pong", Algorithms: []string{"vl"}, HopLatency: 6}
	so, _ := slow.Run()
	fo, _ := fast.Run()
	if so[0].Ticks <= fo[0].Ticks {
		t.Fatalf("hop override ineffective: %d vs %d", so[0].Ticks, fo[0].Ticks)
	}
}

func TestSpecTunedOverride(t *testing.T) {
	s := Spec{
		Benchmark:  "FIR",
		Algorithms: []string{"tuned"},
		Tuned:      &TunedSpec{Zeta: 512, Tau: 48, Delta: 128, Alpha: 1, Beta: 2},
	}
	outs, err := s.Run()
	if err != nil || len(outs) != 1 {
		t.Fatalf("%v %v", outs, err)
	}
	def, _ := (&Spec{Benchmark: "FIR", Algorithms: []string{"tuned"}}).Run()
	if outs[0].Ticks == def[0].Ticks {
		t.Fatal("tuned override produced identical run (suspicious)")
	}
}

func TestReadSpecsSingleAndArray(t *testing.T) {
	single := `{"benchmark":"FIR"}`
	specs, err := ReadSpecs(strings.NewReader(single))
	if err != nil || len(specs) != 1 || specs[0].Benchmark != "FIR" {
		t.Fatalf("%v %v", specs, err)
	}
	array := `[{"benchmark":"FIR"},{"benchmark":"halo","algorithms":["vl"]}]`
	specs, err = ReadSpecs(strings.NewReader(array))
	if err != nil || len(specs) != 2 || specs[1].Benchmark != "halo" {
		t.Fatalf("%v %v", specs, err)
	}
	if _, err = ReadSpecs(strings.NewReader("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestWriteOutcomesRoundTrip(t *testing.T) {
	var sb strings.Builder
	err := WriteOutcomes(&sb, []Outcome{{Benchmark: "FIR", Algorithm: spamer.AlgTuned, Ticks: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"ticks": 42`) {
		t.Fatalf("json: %s", sb.String())
	}
}

// TestReadSpecsErrorPaths: every malformed input ReadSpecs can see is
// rejected with a spec-JSON error rather than a partial decode.
func TestReadSpecsErrorPaths(t *testing.T) {
	bad := []string{
		``,                          // empty input
		`{`,                         // truncated object
		`[{"benchmark":"FIR"}`,      // truncated array
		`{"benchmark":5}`,           // wrong type for a field
		`{"algorithms":"vl"}`,       // scalar where a list belongs
		`[{"benchmark":"FIR"},"x"]`, // non-object array element
		`42`,                        // bare scalar
	}
	for _, in := range bad {
		if specs, err := ReadSpecs(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSpecs(%q) accepted: %+v", in, specs)
		}
	}
}

// TestReadSpecsThenValidate: inputs that decode fine but describe an
// impossible experiment fail at Validate with a pointed message.
func TestReadSpecsThenValidate(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`{}`, "missing benchmark"},
		{`{"benchmark":"no-such-kernel"}`, `unknown benchmark "no-such-kernel"`},
		{`{"benchmark":"FIR","algorithms":["vl","warp-drive"]}`, `unknown algorithm "warp-drive"`},
		{`{"benchmark":"FIR","scale":-3}`, "negative scale"},
		{`{"benchmark":"FIR","repeat":-1}`, "negative scale/repeat"},
		{`{"benchmark":"allreduce"}`, `unknown benchmark "allreduce"`}, // extended gate closed
	}
	for _, c := range cases {
		specs, err := ReadSpecs(strings.NewReader(c.in))
		if err != nil || len(specs) != 1 {
			t.Fatalf("ReadSpecs(%q): %v %v", c.in, specs, err)
		}
		err = specs[0].Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%q) = %v, want mention of %q", c.in, err, c.want)
		}
	}
}
