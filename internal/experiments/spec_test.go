package experiments

import (
	"strings"
	"testing"

	"spamer"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Benchmark: "FIR"}, true},
		{Spec{}, false},
		{Spec{Benchmark: "nope"}, false},
		{Spec{Benchmark: "FIR", Algorithms: []string{"vl", "bogus"}}, false},
		{Spec{Benchmark: "FIR", Algorithms: []string{"history", "dyntuned"}}, true},
		{Spec{Benchmark: "allreduce"}, false}, // extended needs opt-in
		{Spec{Benchmark: "allreduce", Extensions: &Extensions{AllowExtendedWorkloads: true}}, true},
		{Spec{Benchmark: "FIR", Scale: -1}, false},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

// TestSpecValidateErrors pins the message of every Validate error path,
// so API clients (the service returns these verbatim as 400 bodies) and
// the oracle's invalid-case reporting stay actionable.
func TestSpecValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing benchmark", Spec{}, "missing benchmark"},
		{"unknown benchmark", Spec{Benchmark: "nope"}, `unknown benchmark "nope"`},
		{"unknown algorithm", Spec{Benchmark: "FIR", Algorithms: []string{"bogus"}}, `unknown algorithm "bogus"`},
		{"negative scale", Spec{Benchmark: "FIR", Scale: -1}, "negative scale/repeat"},
		{"negative repeat", Spec{Benchmark: "FIR", Repeat: -2}, "negative scale/repeat"},
		{"negative domains", Spec{Benchmark: "FIR", Domains: -1}, "negative domains"},
		{"domains on unsafe benchmark", Spec{Benchmark: "incast", Domains: 2}, "not parallel-safe"},
		{"fault on parallel kernel", Spec{Benchmark: "FIR", Domains: 2, Fault: &FaultSpec{DropStash: 1}},
			"fault injection requires the sequential kernel"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// The sequential-kernel restriction only binds an armed fault: a
	// zero-drop FaultSpec is inert and must not invalidate domains.
	ok := Spec{Benchmark: "FIR", Domains: 2, Fault: &FaultSpec{}}
	if err := ok.Validate(); err != nil {
		t.Errorf("inert fault rejected: %v", err)
	}
}

// TestCanonicalFault: an inert fault block canonicalizes away (so it
// cannot split the result cache), while an armed one survives — a
// faulted spec must never share a cache entry with its clean twin.
func TestCanonicalFault(t *testing.T) {
	clean := Spec{Benchmark: "ping-pong"}
	inert := Spec{Benchmark: "ping-pong", Fault: &FaultSpec{}}
	armed := Spec{Benchmark: "ping-pong", Fault: &FaultSpec{DropStash: 3}}
	if inert.Canonical().Fault != nil {
		t.Error("inert fault survived canonicalization")
	}
	if inert.Hash() != clean.Hash() {
		t.Error("inert fault split the cache key")
	}
	if armed.Canonical().Fault == nil || armed.Hash() == clean.Hash() {
		t.Error("armed fault must keep its own cache key")
	}
	c := armed.Canonical()
	c.Fault.DropStash = 99
	if armed.Fault.DropStash != 3 {
		t.Error("Canonical aliased the caller's FaultSpec")
	}
}

func TestSpecRunProducesOutcomes(t *testing.T) {
	s := Spec{Benchmark: "firewall", Algorithms: []string{"vl", "tuned"}, Label: "x"}
	outs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if outs[0].Algorithm != "vl" || outs[0].SpeedupOverVL != 1.0 {
		t.Fatalf("baseline outcome: %+v", outs[0])
	}
	if outs[1].SpeedupOverVL <= 1.0 {
		t.Fatalf("tuned not faster: %+v", outs[1])
	}
	if outs[1].Label != "x" || outs[1].Messages == 0 {
		t.Fatalf("outcome fields: %+v", outs[1])
	}
}

func TestSpecRepeatChecksDeterminism(t *testing.T) {
	s := Spec{Benchmark: "ping-pong", Algorithms: []string{"tuned"}, Repeat: 2}
	outs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Deterministic == nil || !*outs[0].Deterministic {
		t.Fatalf("determinism flag: %+v", outs[0])
	}
}

func TestSpecOverridesApply(t *testing.T) {
	slow := Spec{Benchmark: "ping-pong", Algorithms: []string{"vl"}, HopLatency: 48}
	fast := Spec{Benchmark: "ping-pong", Algorithms: []string{"vl"}, HopLatency: 6}
	so, _ := slow.Run()
	fo, _ := fast.Run()
	if so[0].Ticks <= fo[0].Ticks {
		t.Fatalf("hop override ineffective: %d vs %d", so[0].Ticks, fo[0].Ticks)
	}
}

func TestSpecTunedOverride(t *testing.T) {
	s := Spec{
		Benchmark:  "FIR",
		Algorithms: []string{"tuned"},
		Tuned:      &TunedSpec{Zeta: 512, Tau: 48, Delta: 128, Alpha: 1, Beta: 2},
	}
	outs, err := s.Run()
	if err != nil || len(outs) != 1 {
		t.Fatalf("%v %v", outs, err)
	}
	def, _ := (&Spec{Benchmark: "FIR", Algorithms: []string{"tuned"}}).Run()
	if outs[0].Ticks == def[0].Ticks {
		t.Fatal("tuned override produced identical run (suspicious)")
	}
}

func TestReadSpecsSingleAndArray(t *testing.T) {
	single := `{"benchmark":"FIR"}`
	specs, err := ReadSpecs(strings.NewReader(single))
	if err != nil || len(specs) != 1 || specs[0].Benchmark != "FIR" {
		t.Fatalf("%v %v", specs, err)
	}
	array := `[{"benchmark":"FIR"},{"benchmark":"halo","algorithms":["vl"]}]`
	specs, err = ReadSpecs(strings.NewReader(array))
	if err != nil || len(specs) != 2 || specs[1].Benchmark != "halo" {
		t.Fatalf("%v %v", specs, err)
	}
	if _, err = ReadSpecs(strings.NewReader("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestWriteOutcomesRoundTrip(t *testing.T) {
	var sb strings.Builder
	err := WriteOutcomes(&sb, []Outcome{{Benchmark: "FIR", Algorithm: spamer.AlgTuned, Ticks: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"ticks": 42`) {
		t.Fatalf("json: %s", sb.String())
	}
}

// TestReadSpecsErrorPaths: every malformed input ReadSpecs can see is
// rejected with a spec-JSON error rather than a partial decode.
func TestReadSpecsErrorPaths(t *testing.T) {
	bad := []string{
		``,                          // empty input
		`{`,                         // truncated object
		`[{"benchmark":"FIR"}`,      // truncated array
		`{"benchmark":5}`,           // wrong type for a field
		`{"algorithms":"vl"}`,       // scalar where a list belongs
		`[{"benchmark":"FIR"},"x"]`, // non-object array element
		`42`,                        // bare scalar
	}
	for _, in := range bad {
		if specs, err := ReadSpecs(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSpecs(%q) accepted: %+v", in, specs)
		}
	}
}

// TestReadSpecsThenValidate: inputs that decode fine but describe an
// impossible experiment fail at Validate with a pointed message.
func TestReadSpecsThenValidate(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`{}`, "missing benchmark"},
		{`{"benchmark":"no-such-kernel"}`, `unknown benchmark "no-such-kernel"`},
		{`{"benchmark":"FIR","algorithms":["vl","warp-drive"]}`, `unknown algorithm "warp-drive"`},
		{`{"benchmark":"FIR","scale":-3}`, "negative scale"},
		{`{"benchmark":"FIR","repeat":-1}`, "negative scale/repeat"},
		{`{"benchmark":"allreduce"}`, `unknown benchmark "allreduce"`}, // extended gate closed
	}
	for _, c := range cases {
		specs, err := ReadSpecs(strings.NewReader(c.in))
		if err != nil || len(specs) != 1 {
			t.Fatalf("ReadSpecs(%q): %v %v", c.in, specs, err)
		}
		err = specs[0].Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%q) = %v, want mention of %q", c.in, err, c.want)
		}
	}
}
