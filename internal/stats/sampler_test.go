package stats

import (
	"strings"
	"testing"

	"spamer"
	"spamer/internal/workloads"
)

// buildTwoPhase builds a 1:1 stream whose producer switches from slow
// to fast halfway — the Figure 7 overview structure.
func buildTwoPhase(sys *spamer.System) {
	q := sys.NewQueue("q")
	const n = 600
	sys.Spawn("producer", func(t *spamer.Thread) {
		pr := q.NewProducer(0)
		for i := 0; i < n; i++ {
			if i < n/2 {
				t.Compute(200) // slow phase: producer-bound
			} else {
				t.Compute(10) // fast phase: consumer-bound
			}
			pr.Push(t.Proc, uint64(i))
		}
	})
	sys.Spawn("consumer", func(t *spamer.Thread) {
		c := q.NewConsumer(t.Proc, 4)
		for i := 0; i < n; i++ {
			c.Pop(t.Proc)
			t.Compute(60)
		}
	})
}

func TestSamplerWindowsCoverRun(t *testing.T) {
	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 32})
	buildTwoPhase(sys)
	s := Attach(sys, 2048)
	res := sys.Run()
	ws := s.Windows()
	if len(ws) < 4 {
		t.Fatalf("windows = %d", len(ws))
	}
	var in, out uint64
	prevEnd := uint64(0)
	for _, w := range ws {
		if w.StartTick != prevEnd {
			t.Fatalf("window gap: %d..%d after end %d", w.StartTick, w.EndTick, prevEnd)
		}
		prevEnd = w.EndTick
		in += w.MessagesIn
		out += w.MessagesOut
	}
	// The final partial window is flushed at drain, so window sums must
	// equal the end-of-run queue totals exactly — nothing from the tail
	// may vanish.
	if in != res.Pushed || out != res.Popped {
		t.Fatalf("window sums != totals: %d/%d vs %d/%d", in, out, res.Pushed, res.Popped)
	}
}

// TestSamplerFlushesTail is the regression test for the dropped tail
// window: with a period longer than the whole run, every message flows
// after the last (nonexistent) full period and the old sampler reported
// no windows at all.
func TestSamplerFlushesTail(t *testing.T) {
	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 32})
	buildTwoPhase(sys)
	s := Attach(sys, 1<<30) // period far beyond the run length
	res := sys.Run()
	ws := s.Windows()
	if len(ws) == 0 {
		t.Fatal("sampler dropped the final partial window")
	}
	var in, out, busy uint64
	for _, w := range ws {
		in += w.MessagesIn
		out += w.MessagesOut
		busy += w.BusBusy
	}
	if in != res.Pushed || out != res.Popped {
		t.Fatalf("tail window sums != totals: %d/%d vs %d/%d", in, out, res.Pushed, res.Popped)
	}
	if busy != res.Bus.BusyCycles {
		t.Fatalf("tail window busy = %d, want %d", busy, res.Bus.BusyCycles)
	}
	if last := ws[len(ws)-1]; last.EndTick != res.Ticks {
		t.Fatalf("last window ends at %d, run ended at %d", last.EndTick, res.Ticks)
	}
}

// Flush is idempotent: a second call with no time passed and no counter
// movement emits nothing.
func TestSamplerFlushIdempotent(t *testing.T) {
	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 32})
	buildTwoPhase(sys)
	s := Attach(sys, 2048)
	sys.Run()
	n := len(s.Windows())
	s.Flush()
	s.Flush()
	if got := len(s.Windows()); got != n {
		t.Fatalf("redundant Flush grew windows: %d -> %d", n, got)
	}
}

func TestSamplerDetectsPhases(t *testing.T) {
	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 32})
	buildTwoPhase(sys)
	s := Attach(sys, 2048)
	sys.Run()
	phases := s.Phases(0.35)
	if len(phases) < 2 {
		t.Fatalf("phases = %d, want >= 2 (slow then fast)", len(phases))
	}
	// Some later phase must be clearly faster than the first (the tail
	// phase can be a low-rate drain, so compare against the maximum).
	first := phases[0]
	maxRate := 0.0
	for _, p := range phases[1:] {
		if p.Rate > maxRate {
			maxRate = p.Rate
		}
	}
	if maxRate <= first.Rate*1.5 {
		t.Fatalf("no clear fast phase: first %.3f, max later %.3f", first.Rate, maxRate)
	}
}

func TestSamplerRates(t *testing.T) {
	w := Window{StartTick: 0, EndTick: 2000, Pushes: 10, Failures: 5}
	if got := w.Rate(w.Pushes); got != 5 {
		t.Fatalf("rate = %v", got)
	}
	if got := w.FailureRate(); got != 0.5 {
		t.Fatalf("failure rate = %v", got)
	}
	if (Window{}).FailureRate() != 0 {
		t.Fatal("zero-window failure rate")
	}
}

func TestSamplerCSV(t *testing.T) {
	sys := spamer.NewSystem(spamer.Config{Deadline: 1 << 32})
	w, _ := workloads.ByName("firewall")
	w.Build(sys, 1)
	s := Attach(sys, 8192)
	sys.Run()
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "start,end,") {
		t.Fatalf("csv header: %q", sb.String()[:20])
	}
	if strings.Count(sb.String(), "\n") < 3 {
		t.Fatalf("csv too short:\n%s", sb.String())
	}
}
