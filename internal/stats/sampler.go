// Package stats provides windowed time-series sampling of a running
// system: the overview view of §4.2's Figure 7 ("two phases: when the
// consumer runs faster at the beginning, transactions happen in a
// stable fashion ... after about 50 000 ns the producer generates a
// burst and the consumer becomes the bottleneck") generalized to any
// run. A Sampler snapshots the device and bus counters on a fixed
// period and reports per-window rates, from which phase changes are
// visible.
package stats

import (
	"fmt"
	"io"

	"spamer"
	"spamer/internal/noc"
	"spamer/internal/vl"
)

// Window is one sampling interval's deltas.
type Window struct {
	StartTick uint64
	EndTick   uint64

	Pushes      uint64 // stashes issued (demand + speculative)
	Failures    uint64 // stashes that missed
	Fetches     uint64 // consumer requests processed
	BusBusy     uint64 // busy channel-cycles
	MessagesIn  uint64 // library-level pushes
	MessagesOut uint64 // library-level pops
}

// Rate returns events per kilocycle for a counter value in this window.
func (w Window) Rate(count uint64) float64 {
	d := w.EndTick - w.StartTick
	if d == 0 {
		return 0
	}
	return float64(count) / float64(d) * 1000
}

// FailureRate is failed/issued pushes within the window.
func (w Window) FailureRate() float64 {
	if w.Pushes == 0 {
		return 0
	}
	return float64(w.Failures) / float64(w.Pushes)
}

// Sampler periodically snapshots a system's counters. Attach before
// Run; windows accumulate until the simulation drains.
type Sampler struct {
	sys    *spamer.System
	period uint64
	tickFn func(uint64) // periodic sampling callback, bound once

	windows []Window

	prevDev vl.Stats
	prevBus noc.Stats
	prevIn  uint64
	prevOut uint64
	lastT   uint64
}

// Attach installs a sampler with the given period in cycles. It must be
// called before System.Run. The sampler snapshots every period while
// the simulation is live and flushes the final partial window when the
// run drains, so window sums always equal end-of-run totals.
func Attach(sys *spamer.System, period uint64) *Sampler {
	if period == 0 {
		period = 4096
	}
	s := &Sampler{sys: sys, period: period}
	s.tickFn = s.tick
	sys.Kernel().AfterFunc(period, s.tickFn, 0)
	sys.OnDrain(s.Flush)
	return s
}

// tick is the periodic sampling event. The bound func value in tickFn is
// what gets scheduled, so the per-period reschedule allocates nothing.
func (s *Sampler) tick(uint64) {
	s.snapshot()
	if s.sys.Kernel().LiveProcs() > 0 {
		s.sys.Kernel().AfterFunc(s.period, s.tickFn, 0)
	}
}

// Flush snapshots the tail of the run: the partial window between the
// last periodic sample and the moment the simulation drained. Without
// it, messages and pushes after the final full period would vanish from
// Windows, Phases, and WriteCSV. Attach hooks Flush into run
// completion; callers that stop a system early (RunUntil) may call it
// explicitly. Flush is idempotent — it emits nothing when no time
// passed and no counter moved since the last snapshot.
func (s *Sampler) Flush() {
	now := s.sys.Kernel().Now()
	if now > s.lastT {
		s.snapshot()
		return
	}
	// Same tick as the previous snapshot: emit a zero-width window only
	// if counters moved after it (events later in the same tick), so
	// totals still balance without recording empty windows.
	dev := aggregateDevs(s.sys)
	bus := s.sys.Bus().Stats()
	var in, out uint64
	for _, q := range s.sys.Queues() {
		in += q.Pushed()
		out += q.Popped()
	}
	if dev != s.prevDev || bus != s.prevBus || in != s.prevIn || out != s.prevOut {
		s.snapshot()
	}
}

func (s *Sampler) snapshot() {
	now := s.sys.Kernel().Now()
	dev := aggregateDevs(s.sys)
	bus := s.sys.Bus().Stats()
	var in, out uint64
	for _, q := range s.sys.Queues() {
		in += q.Pushed()
		out += q.Popped()
	}
	s.windows = append(s.windows, Window{
		StartTick:   s.lastT,
		EndTick:     now,
		Pushes:      dev.TotalPushes() - s.prevDev.TotalPushes(),
		Failures:    dev.FailedPushes() - s.prevDev.FailedPushes(),
		Fetches:     dev.Fetches - s.prevDev.Fetches,
		BusBusy:     bus.BusyCycles - s.prevBus.BusyCycles,
		MessagesIn:  in - s.prevIn,
		MessagesOut: out - s.prevOut,
	})
	s.prevDev, s.prevBus, s.prevIn, s.prevOut, s.lastT = dev, bus, in, out, now
}

func aggregateDevs(sys *spamer.System) vl.Stats {
	var agg vl.Stats
	for _, d := range sys.Devices() {
		st := d.Stats()
		agg.PushAccepts += st.PushAccepts
		agg.PushNACKs += st.PushNACKs
		agg.Fetches += st.Fetches
		agg.FetchNACKs += st.FetchNACKs
		agg.Registers += st.Registers
		agg.DemandPushes += st.DemandPushes
		agg.DemandHits += st.DemandHits
		agg.DemandMisses += st.DemandMisses
		agg.SpecScheduled += st.SpecScheduled
		agg.SpecPushes += st.SpecPushes
		agg.SpecHits += st.SpecHits
		agg.SpecMisses += st.SpecMisses
	}
	return agg
}

// Windows returns the collected windows.
func (s *Sampler) Windows() []Window {
	out := make([]Window, len(s.windows))
	copy(out, s.windows)
	return out
}

// Phases segments the run greedily by throughput: consecutive windows
// whose message-out rate differs by less than tol (relative) merge into
// one phase. This recovers the "two phases" structure of Figure 7's
// overview chart.
type Phase struct {
	StartTick uint64
	EndTick   uint64
	Rate      float64 // messages out per kilocycle, averaged
}

// Phases segments with the given relative tolerance (e.g. 0.35).
func (s *Sampler) Phases(tol float64) []Phase {
	if tol <= 0 {
		tol = 0.35
	}
	var phases []Phase
	for _, w := range s.windows {
		r := w.Rate(w.MessagesOut)
		n := len(phases)
		if n > 0 {
			p := &phases[n-1]
			ref := p.Rate
			if ref == 0 && r == 0 || (ref > 0 && abs(r-ref)/ref <= tol) {
				// Extend the phase with a duration-weighted rate.
				dOld := float64(p.EndTick - p.StartTick)
				dNew := float64(w.EndTick - w.StartTick)
				p.Rate = (p.Rate*dOld + r*dNew) / (dOld + dNew)
				p.EndTick = w.EndTick
				continue
			}
		}
		phases = append(phases, Phase{StartTick: w.StartTick, EndTick: w.EndTick, Rate: r})
	}
	return phases
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WriteCSV dumps windows for external plotting.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "start,end,pushes,failures,fetches,busbusy,msgs_in,msgs_out"); err != nil {
		return err
	}
	for _, win := range s.windows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			win.StartTick, win.EndTick, win.Pushes, win.Failures, win.Fetches,
			win.BusBusy, win.MessagesIn, win.MessagesOut); err != nil {
			return err
		}
	}
	return nil
}
